(* Tests for the cluster layer: the content-addressed verdict cache
   (lookup semantics, disk persistence, qcheck properties), and the
   coordinator end to end against real worker daemons on loopback TCP —
   work stealing with stub workers, warm-cache resubmission, and the
   kill-a-worker-mid-job failover acceptance scenario. *)

open Lbr_server
module Cache = Lbr_cluster.Cache
module Coordinator = Lbr_cluster.Coordinator
module Trace_merge = Lbr_cluster.Trace_merge

let qsuite name props = (name, List.map QCheck_alcotest.to_alcotest props)

(* ------------------------------------------------------------------ *)
(* Fixtures (mirroring test_server's)                                  *)

let fresh_dir =
  let counter = ref 0 in
  fun label ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lbr-cluster-test-%d-%d-%s" (Unix.getpid ()) !counter label)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm dir;
    Unix.mkdir dir 0o755;
    dir

let pool_bytes_of_seed ?(classes = 18) seed =
  Lbr_jvm.Serialize.to_bytes
    (Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes))

let spec_of_seed ?classes ?(retries = 0) seed =
  {
    Wire.tool = "";
    strategy = Lbr_harness.Experiment.Gbr;
    priority = Wire.Normal;
    crash_policy = Lbr_runtime.Oracle.Crash_raises;
    retries;
    pool_bytes = pool_bytes_of_seed ?classes seed;
    frontend = "jvm";
    trace_ctx = None;
  }

let reference_run ?classes seed =
  let pool =
    match Lbr_jvm.Serialize.of_bytes (pool_bytes_of_seed ?classes seed) with
    | Ok pool -> pool
    | Error m -> Alcotest.failf "reference pool does not decode: %s" m
  in
  let tool =
    match
      List.find_opt (fun t -> Lbr_decompiler.Tool.is_buggy_on t pool) Lbr_decompiler.Tool.all
    with
    | Some t -> t
    | None -> Alcotest.failf "seed %d: no tool is buggy; pick another fixture seed" seed
  in
  let instance =
    {
      Lbr_harness.Corpus.instance_id = Printf.sprintf "ref-%d" seed;
      benchmark = { Lbr_harness.Corpus.bench_id = Printf.sprintf "ref-%d" seed; seed; pool };
      tool;
      baseline_errors = Lbr_decompiler.Tool.errors tool pool;
    }
  in
  let outcome, final = Lbr_harness.Experiment.run_with Lbr_harness.Experiment.Gbr instance in
  (outcome, Lbr_jvm.Serialize.to_bytes final)

let counter_value name = Option.value ~default:0 (Lbr_obs.Metrics.find_counter_value name)

let hex32 i = Printf.sprintf "%032x" (i land max_int)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_store_find_first_wins () =
  let c = Cache.create () in
  let job = hex32 1 and k1 = hex32 11 and k2 = hex32 12 in
  Alcotest.(check (option bool)) "miss on empty" None (Cache.find c ~job ~key:k1);
  Cache.store c ~job ~key:k1 true;
  Cache.store c ~job ~key:k2 false;
  Alcotest.(check (option bool)) "hit true" (Some true) (Cache.find c ~job ~key:k1);
  Alcotest.(check (option bool)) "hit false" (Some false) (Cache.find c ~job ~key:k2);
  Alcotest.(check (option bool)) "other job is a miss" None
    (Cache.find c ~job:(hex32 2) ~key:k1);
  (* deterministic verdicts: a conflicting re-store keeps the original *)
  Cache.store c ~job ~key:k1 false;
  Alcotest.(check (option bool)) "first write wins" (Some true) (Cache.find c ~job ~key:k1);
  Alcotest.(check int) "entries counts pairs once" 2 (Cache.entries c);
  let seeds = List.sort compare (Cache.seeds c ~job) in
  Alcotest.(check (list (pair string bool))) "seeds lists the job's verdicts"
    (List.sort compare [ (k1, true); (k2, false) ])
    seeds;
  Cache.close c

let test_cache_persists_across_restart () =
  let path = Filename.concat (fresh_dir "cachefile") "verdicts.cache" in
  let c = Cache.create ~path () in
  let job = hex32 7 in
  Cache.store c ~job ~key:(hex32 71) true;
  Cache.store c ~job ~key:(hex32 72) false;
  Cache.close c;
  (* a torn trailing line (crash mid-append) must not poison the reload *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc (hex32 7 ^ " " ^ String.make 10 'a');
  close_out oc;
  let c = Cache.create ~path () in
  Alcotest.(check int) "whole entries survive, torn line skipped" 2 (Cache.entries c);
  Alcotest.(check (option bool)) "verdict intact" (Some true)
    (Cache.find c ~job ~key:(hex32 71));
  (* the reopened cache still appends *)
  Cache.store c ~job ~key:(hex32 73) true;
  Cache.close c;
  let c = Cache.create ~path () in
  Alcotest.(check int) "append after reload persists" 3 (Cache.entries c);
  Cache.close c

let test_cache_job_key_content_addressing () =
  let spec = spec_of_seed ~classes:6 1 in
  let k = Cache.job_key spec in
  Alcotest.(check int) "job key is 32 hex chars" 32 (String.length k);
  Alcotest.(check string) "strategy does not change the key" k
    (Cache.job_key { spec with strategy = Lbr_harness.Experiment.Jreduce });
  Alcotest.(check string) "priority does not change the key" k
    (Cache.job_key { spec with priority = Wire.High });
  Alcotest.(check bool) "pool bytes change the key" true
    (k <> Cache.job_key { spec with pool_bytes = spec.pool_bytes ^ "x" });
  Alcotest.(check bool) "crash policy changes the key" true
    (k <> Cache.job_key { spec with crash_policy = Lbr_runtime.Oracle.Crash_fails })

(* hit => identical to recompute: modelled against a reference Hashtbl
   holding the first-stored verdict per (job, key) pair *)
let prop_cache_hit_matches_recompute =
  QCheck.Test.make ~count:100 ~name:"cache hit is identical to recompute"
    QCheck.(small_list (triple small_nat small_nat bool))
    (fun entries ->
      let c = Cache.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (j, k, ok) ->
          let job = hex32 j and key = hex32 k in
          Cache.store c ~job ~key ok;
          if not (Hashtbl.mem model (job, key)) then Hashtbl.add model (job, key) ok)
        entries;
      let verdict =
        List.for_all
          (fun (j, k, _) ->
            let job = hex32 j and key = hex32 k in
            Cache.find c ~job ~key = Hashtbl.find_opt model (job, key))
          entries
        && Cache.entries c = Hashtbl.length model
      in
      Cache.close c;
      verdict)

let prop_cache_survives_restart =
  QCheck.Test.make ~count:50 ~name:"persisted cache survives restart"
    QCheck.(small_list (triple small_nat small_nat bool))
    (fun entries ->
      let path = Filename.concat (fresh_dir "cacheprop") "c.cache" in
      let c = Cache.create ~path () in
      List.iter
        (fun (j, k, ok) -> Cache.store c ~job:(hex32 j) ~key:(hex32 k) ok)
        entries;
      let before =
        List.map (fun (j, k, _) -> Cache.find c ~job:(hex32 j) ~key:(hex32 k)) entries
      in
      let n = Cache.entries c in
      Cache.close c;
      let c = Cache.create ~path () in
      let after =
        List.map (fun (j, k, _) -> Cache.find c ~job:(hex32 j) ~key:(hex32 k)) entries
      in
      let n' = Cache.entries c in
      Cache.close c;
      before = after && n = n')

(* ------------------------------------------------------------------ *)
(* Coordinator plumbing helpers                                        *)

(* Collect per-job terminal states delivered through a backend's event
   stream, with a blocking wait. *)
type collector = {
  c_mutex : Mutex.t;
  c_cond : Condition.t;
  c_done : (string, Scheduler.status) Hashtbl.t;
  c_verdicts : int Atomic.t;
}

let collector () =
  {
    c_mutex = Mutex.create ();
    c_cond = Condition.create ();
    c_done = Hashtbl.create 8;
    c_verdicts = Atomic.make 0;
  }

let collect col id (ev : Scheduler.event) =
  match ev with
  | Scheduler.Evaluated _ -> Atomic.incr col.c_verdicts
  | Scheduler.Finished ((Scheduler.Done _ | Scheduler.Failed _ | Scheduler.Cancelled) as st)
    ->
      Mutex.lock col.c_mutex;
      Hashtbl.replace col.c_done id st;
      Condition.broadcast col.c_cond;
      Mutex.unlock col.c_mutex
  | _ -> ()

let await_done ?(timeout = 120.) col n =
  let deadline = Unix.gettimeofday () +. timeout in
  Mutex.lock col.c_mutex;
  while Hashtbl.length col.c_done < n && Unix.gettimeofday () < deadline do
    Mutex.unlock col.c_mutex;
    Thread.delay 0.005;
    Mutex.lock col.c_mutex
  done;
  let finished = Hashtbl.length col.c_done in
  Mutex.unlock col.c_mutex;
  if finished < n then Alcotest.failf "only %d of %d jobs finished in time" finished n

let submit_ok backend col spec =
  match backend.Server.b_submit ~on_event:(collect col) ~seeds:[] spec with
  | Ok id -> id
  | Error `Draining -> Alcotest.fail "coordinator draining"
  | Error (`Queue_full _) -> Alcotest.fail "coordinator queue full"

let start_worker () =
  Server.start
    {
      Server.listen = Addr.Tcp ("127.0.0.1", 0);
      jobs = 1;
      queue_depth = 8;
      journal_dir = None;
    }

(* ------------------------------------------------------------------ *)
(* Work stealing, against stub workers whose job duration we control    *)

let zero_stats =
  {
    Wire.queued_jobs = 0;
    running_jobs = 0;
    job_stats = [];
    oracle_queries = 0;
    oracle_memo_hits = 0;
    uptime = 0.;
    metrics_text = "";
  }

let stub_result_stats =
  {
    Wire.ok = true;
    predicate_runs = 1;
    replayed_runs = 0;
    tool_executions = 1;
    oracle_retries = 0;
    oracle_crashes = 0;
    sim_time = 0.;
    wall_time = 0.;
    classes0 = 1;
    classes1 = 1;
    bytes0 = 1;
    bytes1 = 1;
  }

(* A wire-complete worker daemon whose "reduction" echoes the pool back.
   Jobs whose spec carries [retries = 99] block until [gate] opens —
   the knob the stealing test uses to wedge one worker. *)
let stub_worker gate =
  let seq = ref 0 in
  let backend =
    {
      Server.b_submit =
        (fun ~on_event ~seeds:_ spec ->
          incr seq;
          let id = Printf.sprintf "job-%06d" !seq in
          ignore
            (Thread.create
               (fun () ->
                 Thread.delay 0.01;
                 if spec.Wire.retries = 99 then begin
                   let m, c, open_ = gate in
                   Mutex.lock m;
                   while not !open_ do
                     Condition.wait c m
                   done;
                   Mutex.unlock m
                 end;
                 on_event id
                   (Scheduler.Finished (Scheduler.Done (stub_result_stats, spec.Wire.pool_bytes))))
               ());
          Ok id);
      b_cancel = (fun _ -> false);
      b_stats = (fun () -> zero_stats);
      b_drain = (fun () -> ());
    }
  in
  Server.start_backend ~listen:(Addr.Tcp ("127.0.0.1", 0)) backend

let test_cluster_work_stealing () =
  let gate = (Mutex.create (), Condition.create (), ref false) in
  let w0 = stub_worker gate and w1 = stub_worker gate in
  let steals0 = counter_value "lbr_cluster_steals_total" in
  let coordinator =
    Coordinator.create
      {
        Coordinator.workers = [ Server.bound_addr w0; Server.bound_addr w1 ];
        lanes = 1;
        queue_depth = 16;
        cache_path = None;
        journal_dir = None;
        poll_interval = 0.;
      }
  in
  let backend = Coordinator.backend coordinator in
  let col = collector () in
  (* Round-robin puts the blocking job and one fast job on w0; w1 must
     finish its own two and steal w0's queued fast job. *)
  let blocked = submit_ok backend col { (spec_of_seed ~classes:6 1) with retries = 99 } in
  let fast = List.init 3 (fun i -> submit_ok backend col (spec_of_seed ~classes:6 (2 + i))) in
  await_done ~timeout:30. col 3;
  Alcotest.(check bool) "steals happened" true
    (counter_value "lbr_cluster_steals_total" - steals0 >= 1);
  (* open the gate; the wedged job finishes too *)
  let m, c, open_ = gate in
  Mutex.lock m;
  open_ := true;
  Condition.broadcast c;
  Mutex.unlock m;
  await_done ~timeout:30. col 4;
  List.iter
    (fun id ->
      match Hashtbl.find_opt col.c_done id with
      | Some (Scheduler.Done (_, bytes)) ->
          Alcotest.(check bool) (id ^ " echoes its pool") true (String.length bytes > 0)
      | other ->
          Alcotest.failf "%s: unexpected terminal state %s" id
            (match other with
            | Some (Scheduler.Failed m) -> "failed: " ^ m
            | Some Scheduler.Cancelled -> "cancelled"
            | _ -> "missing"))
    (blocked :: fast);
  (* queue-depth gauges are registered and rendered *)
  let prom = Lbr_obs.Metrics.render_prometheus () in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "w0 queue-depth gauge exported" true
    (contains prom "lbr_cluster_w0_queue_depth");
  Alcotest.(check bool) "w1 queue-depth gauge exported" true
    (contains prom "lbr_cluster_w1_queue_depth");
  backend.Server.b_drain ();
  Server.stop w0;
  Server.stop w1

(* ------------------------------------------------------------------ *)
(* Warm cache: an identical resubmission replays every verdict          *)

let test_cluster_warm_cache_resubmission () =
  let seed = 21 in
  let _, ref_bytes = reference_run ~classes:16 seed in
  let w = start_worker () in
  let coordinator =
    Coordinator.create
      {
        Coordinator.workers = [ Server.bound_addr w ];
        lanes = 1;
        queue_depth = 8;
        cache_path = None;
        journal_dir = None;
        poll_interval = 0.;
      }
  in
  let backend = Coordinator.backend coordinator in
  let col = collector () in
  let id1 = submit_ok backend col (spec_of_seed ~classes:16 seed) in
  await_done col 1;
  let hits0 = counter_value "lbr_cluster_cache_hits_total" in
  let id2 = submit_ok backend col (spec_of_seed ~classes:16 seed) in
  await_done col 2;
  let check_done id f =
    match Hashtbl.find_opt col.c_done id with
    | Some (Scheduler.Done (stats, bytes)) -> f stats bytes
    | Some (Scheduler.Failed m) -> Alcotest.failf "%s failed: %s" id m
    | _ -> Alcotest.failf "%s did not complete" id
  in
  check_done id1 (fun (stats : Wire.stats) bytes ->
      Alcotest.(check string) "cold run byte-identical to reference" ref_bytes bytes;
      Alcotest.(check int) "cold run replays nothing" 0 stats.Wire.replayed_runs);
  check_done id2 (fun (stats : Wire.stats) bytes ->
      Alcotest.(check string) "warm run byte-identical" ref_bytes bytes;
      Alcotest.(check int) "warm run replays every verdict" stats.Wire.predicate_runs
        stats.Wire.replayed_runs;
      Alcotest.(check bool) "warm run executed nothing fresh" true
        (stats.Wire.replayed_runs > 0));
  Alcotest.(check bool) "cluster cache hits counted" true
    (counter_value "lbr_cluster_cache_hits_total" - hits0 > 0);
  backend.Server.b_drain ();
  Server.stop w

(* ------------------------------------------------------------------ *)
(* Failover: kill a worker mid-job; the retry on the survivor must be
   byte-identical and strictly cheaper (cached verdicts replayed)        *)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then raise End_of_file;
      go (off + n) (len - n)
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
  in
  go off len

(* A one-shot kill switch shared by the proxies below: whichever proxy
   streams the Nth Verdict frame severs ITS worker's connections, exactly
   once cluster-wide.  [t_victim] records which worker died. *)
type trigger = {
  t_threshold : int;
  t_seen : int Atomic.t;      (* verdict frames forwarded, cluster-wide *)
  t_fired : bool Atomic.t;
  t_victim : int Atomic.t;    (* proxy id that severed, -1 until fired *)
}

let trigger threshold =
  {
    t_threshold = threshold;
    t_seen = Atomic.make 0;
    t_fired = Atomic.make false;
    t_victim = Atomic.make (-1);
  }

let verdict_tag = 0x8A  (* Wire.kind_of (Verdict _) *)

(* A frame-level TCP proxy in front of a worker, simulating kill -9 at a
   deterministic point.  The simulated oracle is so fast — and work
   stealing makes placement so racy — that killing a worker from the
   outside on a timer can land before the job starts or after it ends.
   Instead the proxy itself watches the worker's frames and severs the
   link the moment it would forward the trigger's Nth Verdict frame:
   mid-job by construction, on whichever worker actually runs the job,
   and the terminal Result frame can never slip through. *)
let proxy_worker trig ~id upstream =
  let upstream_sa =
    match upstream with
    | Addr.Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    | Addr.Unix_path p -> Unix.ADDR_UNIX p
  in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 16;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let severed = Atomic.make false in
  let fds_mutex = Mutex.create () in
  let fds = ref [ lsock ] in
  let track fd =
    Mutex.lock fds_mutex;
    fds := fd :: !fds;
    Mutex.unlock fds_mutex
  in
  (* shutdown, not close: a close from this thread neither wakes a peer
     thread blocked in read(2) on the same socket nor sends the FIN while
     that read still holds a reference — shutdown does both at once *)
  let hangup fd = try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> () in
  let sever () =
    if not (Atomic.exchange severed true) then begin
      Mutex.lock fds_mutex;
      List.iter
        (fun fd ->
          hangup fd;
          try Unix.close fd with _ -> ())
        !fds;
      fds := [];
      Mutex.unlock fds_mutex
    end
  in
  (* coordinator -> worker: requests are tiny, plain byte copy is fine *)
  let copy_raw src dst =
    (try
       while not (Atomic.get severed) do
         let buf = Bytes.create 4096 in
         let n = Unix.read src buf 0 4096 in
         if n = 0 then raise Exit;
         really_write dst buf 0 n
       done
     with _ -> ());
    hangup src;
    hangup dst
  in
  (* worker -> coordinator: length-prefixed frames, inspected one by one *)
  let copy_frames src dst =
    let hdr = Bytes.create 4 in
    (try
       while not (Atomic.get severed) do
         really_read src hdr 0 4;
         let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
         let payload = Bytes.create len in
         really_read src payload 0 len;
         let kill =
           len > 0
           && Char.code (Bytes.get payload 0) = verdict_tag
           && Atomic.fetch_and_add trig.t_seen 1 + 1 >= trig.t_threshold
           && Atomic.compare_and_set trig.t_fired false true
         in
         if kill then begin
           Atomic.set trig.t_victim id;
           sever ()
         end
         else begin
           really_write dst hdr 0 4;
           really_write dst payload 0 len
         end
       done
     with _ -> ());
    hangup src;
    hangup dst
  in
  let accept_loop () =
    try
      while true do
        let client, _ = Unix.accept lsock in
        let up = Unix.socket (Unix.domain_of_sockaddr upstream_sa) Unix.SOCK_STREAM 0 in
        Unix.connect up upstream_sa;
        track client;
        track up;
        ignore (Thread.create (fun () -> copy_raw client up) ());
        ignore (Thread.create (fun () -> copy_frames up client) ())
      done
    with _ -> ()
  in
  ignore (Thread.create accept_loop ());
  Addr.Tcp ("127.0.0.1", port)

let test_cluster_failover_byte_identical () =
  let seed = 21 in
  let ref_outcome, ref_bytes = reference_run ~classes:64 seed in
  let w0 = start_worker () and w1 = start_worker () in
  (* both workers sit behind killer proxies: work stealing makes the
     job's placement racy, so whichever worker ends up streaming the 5th
     verdict is the one that dies *)
  let trig = trigger 5 in
  let p0 = proxy_worker trig ~id:0 (Server.bound_addr w0) in
  let p1 = proxy_worker trig ~id:1 (Server.bound_addr w1) in
  let journal_dir = fresh_dir "coordjournal" in
  let coordinator =
    Coordinator.create
      {
        Coordinator.workers = [ p0; p1 ];
        lanes = 1;
        queue_depth = 8;
        cache_path = Some (Filename.concat journal_dir "verdicts.cache");
        journal_dir = Some journal_dir;
        poll_interval = 0.;
      }
  in
  let backend = Coordinator.backend coordinator in
  let col = collector () in
  let hits0 = counter_value "lbr_cluster_cache_hits_total" in
  let failovers0 = counter_value "lbr_cluster_failovers_total" in
  let id = submit_ok backend col (spec_of_seed ~classes:64 seed) in
  await_done col 1;
  Alcotest.(check bool) "a worker was killed mid-job" true (Atomic.get trig.t_fired);
  (match Hashtbl.find_opt col.c_done id with
  | Some (Scheduler.Done (stats, bytes)) ->
      Alcotest.(check string) "failover result byte-identical to reference" ref_bytes bytes;
      Alcotest.(check int) "same total predicate runs as an uninterrupted run"
        ref_outcome.Lbr_harness.Experiment.predicate_runs stats.Wire.predicate_runs;
      Alcotest.(check bool) "cached verdicts replayed on the survivor" true
        (stats.Wire.replayed_runs > 0);
      Alcotest.(check bool) "strictly fewer fresh executions than a cold rerun" true
        (stats.Wire.predicate_runs - stats.Wire.replayed_runs
        < ref_outcome.Lbr_harness.Experiment.predicate_runs)
  | Some (Scheduler.Failed m) -> Alcotest.failf "job failed instead of failing over: %s" m
  | _ -> Alcotest.fail "job did not reach a terminal state");
  Alcotest.(check bool) "failover counted" true
    (counter_value "lbr_cluster_failovers_total" - failovers0 >= 1);
  Alcotest.(check bool) "cache hits counted" true
    (counter_value "lbr_cluster_cache_hits_total" - hits0 > 0);
  (* the coordinator journal mirrored the worker's verdicts *)
  let journal = Journal.open_dir journal_dir in
  let mirrored = Journal.verdicts journal ~id in
  Journal.close journal;
  Alcotest.(check bool) "coordinator journal holds mirrored verdicts" true
    (List.length mirrored > 0);
  backend.Server.b_drain ();
  (* the killed link's worker process is still alive and finishes its
     orphaned job on its own, so both daemons stop gracefully *)
  Server.stop w0;
  Server.stop w1

(* ------------------------------------------------------------------ *)
(* Dead cluster: a submission with no live workers must still complete
   the protocol — Accepted, then a terminal Job_failed — instead of the
   coordinator's synchronous finalize relocking the connection's write
   mutex and leaving the client waiting forever.  Also pins table
   pruning: terminal jobs leave the coordinator's stats snapshot. *)

let test_cluster_no_live_workers_fails_cleanly () =
  let w = start_worker () in
  let coordinator =
    Coordinator.create
      {
        Coordinator.workers = [ Server.bound_addr w ];
        lanes = 1;
        queue_depth = 8;
        cache_path = None;
        journal_dir = None;
        poll_interval = 0.;
      }
  in
  let backend = Coordinator.backend coordinator in
  let front = Server.start_backend ~listen:(Addr.Tcp ("127.0.0.1", 0)) backend in
  (* kill -9 the only worker, then let a first submission discover the
     death (bounded connect retries, then failover gives up) *)
  Server.abort w;
  let col = collector () in
  let id1 = submit_ok backend col (spec_of_seed ~classes:6 1) in
  await_done ~timeout:30. col 1;
  (match Hashtbl.find_opt col.c_done id1 with
  | Some (Scheduler.Failed _) -> ()
  | _ -> Alcotest.failf "%s should fail once its only worker is dead" id1);
  (* over the socket: the submission must return, not hang *)
  (match Client.connect (Addr.to_string (Server.bound_addr front)) with
  | Error m -> Alcotest.failf "connect to coordinator front end: %s" m
  | Ok c ->
      let accepted = ref None in
      (match
         Client.submit_ex c
           ~on_accepted:(fun id -> accepted := Some id)
           (spec_of_seed ~classes:6 2)
       with
      | Error (`Job_failed reason) ->
          Alcotest.(check string) "failure names the dead cluster" "no live workers"
            reason
      | Ok _ -> Alcotest.fail "job cannot succeed on a dead cluster"
      | Error (`Rejected (r, _)) -> Alcotest.failf "rejected instead of failed: %s" r
      | Error (`Conn m) -> Alcotest.failf "connection died instead of Job_failed: %s" m);
      Alcotest.(check bool) "Accepted preceded the terminal frame" true
        (!accepted <> None);
      Client.close c);
  let stats = backend.Server.b_stats () in
  Alcotest.(check (list string)) "terminal jobs are pruned from stats" []
    (List.map (fun js -> js.Wire.js_id) stats.Wire.job_stats);
  Server.stop front

(* ------------------------------------------------------------------ *)
(* Trace merging: .tdump codec and cross-node flow arrows               *)

let tdump_gen =
  let open QCheck.Gen in
  let arg_gen =
    oneof
      [
        map (fun s -> Lbr_obs.Trace.Str s) (oneofl [ ""; "job-1"; "abc"; "span \"q\"" ]);
        map (fun n -> Lbr_obs.Trace.Int n) (int_range (-1000) 1000);
        map (fun f -> Lbr_obs.Trace.Float f) (float_range (-1e6) 1e6);
        map (fun b -> Lbr_obs.Trace.Bool b) bool;
      ]
  in
  let event_gen =
    map2
      (fun (name, ph, tid) (ts, dur, args) ->
        {
          Lbr_obs.Trace.ev_name = name;
          ev_ph = ph;
          ev_ts = ts;
          ev_dur = dur;
          ev_tid = tid;
          ev_args = args;
        })
      (triple
         (oneofl [ "coordinator.job"; "core.predicate"; "x" ])
         (oneofl [ 'X'; 'i' ])
         (int_range 0 7))
      (triple (float_range 0. 1e9) (float_range 0. 1e6)
         (list_size (int_range 0 3) (pair (oneofl [ "job"; "span_id"; "ctx.parent" ]) arg_gen)))
  in
  map2
    (fun (node, dropped) (epoch, server_now, events) ->
      {
        Trace_merge.nd_node = node;
        nd_epoch = epoch;
        nd_server_now = server_now;
        nd_client_mid = server_now +. 0.125;
        nd_dropped = dropped;
        nd_events = events;
      })
    (pair (oneofl [ "127.0.0.1:7000"; "w"; "a-very-long-node-label:65535" ]) (int_range 0 100000))
    (triple (float_range 0. 2e9) (float_range 0. 2e9) (list_size (int_range 0 12) event_gen))

let prop_tdump_roundtrip =
  QCheck.Test.make ~count:100 ~name:".tdump codec round-trips"
    (QCheck.make tdump_gen)
    (fun d -> Trace_merge.of_string (Trace_merge.to_string d) = Ok d)

let prop_tdump_decode_total =
  QCheck.Test.make ~count:200 ~name:".tdump decode is total on mangled input"
    (QCheck.make QCheck.Gen.(pair tdump_gen (pair (int_range 0 5000) (int_range 0 255))))
    (fun (d, (pos, byte)) ->
      let s = Trace_merge.to_string d in
      let trunc = String.sub s 0 (pos mod (String.length s + 1)) in
      let b = Bytes.of_string s in
      Bytes.set b (pos mod Bytes.length b) (Char.chr byte);
      (match Trace_merge.of_string trunc with Ok _ | Error _ -> true)
      && (match Trace_merge.of_string (Bytes.to_string b) with Ok _ | Error _ -> true))

(* Two hand-built node dumps: the merged Chrome trace must give each node
   its own pid lane and draw a flow arrow from the coordinator's job span
   to the worker event naming it as ctx.parent. *)
let test_trace_merge_flow_arrows () =
  let ev name ph args =
    { Lbr_obs.Trace.ev_name = name; ev_ph = ph; ev_ts = 10.; ev_dur = 5.; ev_tid = 1; ev_args = args }
  in
  let coord =
    {
      Trace_merge.nd_node = "coord";
      nd_epoch = 1000.;
      nd_server_now = 1010.;
      nd_client_mid = 1010.;
      nd_dropped = 0;
      nd_events =
        [ ev "coordinator.job" 'X' [ ("span_id", Lbr_obs.Trace.Str "feedc0de00000001") ] ];
    }
  in
  let worker =
    {
      Trace_merge.nd_node = "w1";
      nd_epoch = 1000.5;
      nd_server_now = 1010.5;
      nd_client_mid = 1010.;  (* 0.5s of clock skew to correct away *)
      nd_dropped = 0;
      nd_events =
        [ ev "core.predicate" 'X' [ ("ctx.parent", Lbr_obs.Trace.Str "feedc0de00000001") ] ];
    }
  in
  let json = Trace_merge.merge [ coord; worker ] in
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "coord lane named" true
    (contains {|"name":"process_name","pid":1,"args":{"name":"coord"}|});
  Alcotest.(check bool) "worker lane named" true
    (contains {|"name":"process_name","pid":2,"args":{"name":"w1"}|});
  Alcotest.(check bool) "flow start on the coordinator lane" true (contains {|"ph":"s"|});
  Alcotest.(check bool) "flow finish on the worker lane" true (contains {|"ph":"f"|});
  (* worker skew: epoch 1000.5 + (client_mid - server_now) = 1000.0 — same
     corrected timeline as the coordinator, so both lanes share ts 10.0 *)
  Alcotest.(check bool) "skew corrected" true (contains {|"ts":10.0|} || contains {|"ts":10.000|})

(* ------------------------------------------------------------------ *)
(* Metrics federation: the coordinator's merged view is an exact sum    *)

(* The acceptance invariant behind [top --metrics]: for every counter,
   the cluster-merged value equals the coordinator's local registry
   plus the sum over the per-worker dumps — no sampling, no loss.  Stub
   workers serve this process's registry over the wire, which exercises
   the full pull-decode-merge path; the sum identity holds whatever the
   registries contain. *)
let test_cluster_federated_metrics_sum () =
  let gate = (Mutex.create (), Condition.create (), ref true) in
  let w0 = stub_worker gate and w1 = stub_worker gate in
  let coordinator =
    Coordinator.create
      {
        Coordinator.workers = [ Server.bound_addr w0; Server.bound_addr w1 ];
        lanes = 1;
        queue_depth = 16;
        cache_path = None;
        journal_dir = None;
        poll_interval = 0.;
      }
  in
  let backend = Coordinator.backend coordinator in
  let col = collector () in
  let _ids = List.init 2 (fun i -> submit_ok backend col (spec_of_seed ~classes:6 (1 + i))) in
  await_done ~timeout:30. col 2;
  (* poll_interval 0 disables the background loop; pull synchronously *)
  Coordinator.poll_workers coordinator;
  let local = Lbr_obs.Metrics.dump () in
  let per_worker, merged = Coordinator.federated coordinator in
  Alcotest.(check int) "one dump per live worker" 2 (List.length per_worker);
  let counter_in dump name =
    match Lbr_obs.Metrics.find_in_dump dump name with
    | Some (Lbr_obs.Metrics.D_counter n) -> n
    | _ -> 0
  in
  let checked = ref 0 and nonzero = ref 0 in
  List.iter
    (fun (name, _, v) ->
      match v with
      | Lbr_obs.Metrics.D_counter n ->
          let expected =
            counter_in local name
            + List.fold_left (fun acc (_, d) -> acc + counter_in d name) 0 per_worker
          in
          incr checked;
          if n > 0 then incr nonzero;
          Alcotest.(check int) (name ^ " merges to the exact sum") expected n
      | _ -> ())
    merged;
  Alcotest.(check bool) "counters were compared" true (!checked > 0);
  Alcotest.(check bool) "some counter is non-zero" true (!nonzero > 0);
  (* per-worker heartbeat gauges got refreshed by the poll *)
  let prom = backend.Server.b_stats () in
  Alcotest.(check bool) "federated prometheus text has worker labels" true
    (let s = prom.Wire.metrics_text in
     let n = String.length s and m = String.length "{worker=\"cluster\"}" in
     let sub = "{worker=\"cluster\"}" in
     let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
     go 0);
  backend.Server.b_drain ();
  Server.stop w0;
  Server.stop w1

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cluster"
    [
      ( "cache",
        [
          Alcotest.test_case "store/find, first write wins" `Quick
            test_cache_store_find_first_wins;
          Alcotest.test_case "persists across restart, tolerates torn line" `Quick
            test_cache_persists_across_restart;
          Alcotest.test_case "job key is content-addressed" `Quick
            test_cache_job_key_content_addressing;
        ] );
      qsuite "cache-prop" [ prop_cache_hit_matches_recompute; prop_cache_survives_restart ];
      qsuite "trace-merge-prop" [ prop_tdump_roundtrip; prop_tdump_decode_total ];
      ( "trace-merge",
        [
          Alcotest.test_case "lanes, flow arrows, skew correction" `Quick
            test_trace_merge_flow_arrows;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "work stealing drains the wedged worker's queue" `Slow
            test_cluster_work_stealing;
          Alcotest.test_case "warm cache: resubmission replays everything" `Slow
            test_cluster_warm_cache_resubmission;
          Alcotest.test_case "failover after kill: byte-identical, fewer executions" `Slow
            test_cluster_failover_byte_identical;
          Alcotest.test_case "dead cluster: Accepted then Job_failed, never a hang" `Quick
            test_cluster_no_live_workers_fails_cleanly;
          Alcotest.test_case "federated metrics merge to the exact sum" `Quick
            test_cluster_federated_metrics_sum;
        ] );
    ]
