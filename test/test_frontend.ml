(* Tests for the pluggable frontend subsystem: the DIMACS and FJ
   frontends (parse/print round-trips, reduction validity), the registry,
   the refactored JVM path's equivalence with the pre-refactor pipeline,
   and the wire protocol's v4 frontend tag. *)

open Lbr_logic
module Frontend = Lbr_frontend.Frontend
module Registry = Lbr_frontend.Registry
module Dimacs = Lbr_frontend.Dimacs
module Fj = Lbr_frontend.Fj
module Run = Lbr_frontend.Run

let qsuite name props = (name, List.map QCheck_alcotest.to_alcotest props)

let ok_exn what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

(* The pigeonhole instance shipped in examples/data/php.cnf: a 9-clause
   minimally-unsatisfiable core over vars 1..6 plus a strippable
   satisfiable tail over 7..8, with both directive kinds. *)
let php_text =
  "c three pigeons, two holes\n\
   c lbr keep 1\n\
   c lbr implies 3 2\n\
   p cnf 8 11\n\
   1 2 0\n\
   3 4 0\n\
   5 6 0\n\
   -1 -3 0\n\
   -1 -5 0\n\
   -3 -5 0\n\
   -2 -4 0\n\
   -2 -6 0\n\
   -4 -6 0\n\
   7 8 0\n\
   -7 8 0\n"

let fj_text =
  "class A implements I {\n\
  \  String m() { return new String(); }\n\
   }\n\
   class B implements I {\n\
  \  String m() { return new String(); }\n\
   }\n\
   interface I {\n\
  \  String m();\n\
   }\n\
   // main\n\
   new A().m()\n"

let cnf_of_dimacs (t : Dimacs.t) =
  Cnf.make
    (Array.to_list t.clauses
    |> List.filter_map (fun lits ->
           let neg, pos =
             Array.fold_left
               (fun (neg, pos) l ->
                 if l < 0 then ((-l - 1) :: neg, pos) else (neg, (l - 1) :: pos))
               ([], []) lits
           in
           Clause.make ~neg ~pos))

(* ------------------------------------------------------------------ *)
(* DIMACS: parse/print                                                 *)

let test_dimacs_parse () =
  let t = ok_exn "parse" (Dimacs.parse php_text) in
  Alcotest.(check int) "vars" 8 t.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 11 (Array.length t.Dimacs.clauses);
  Alcotest.(check (list int)) "keeps" [ 1 ] t.Dimacs.keeps;
  Alcotest.(check (list (pair int int))) "implications" [ (3, 2) ] t.Dimacs.implications;
  Alcotest.(check int) "items is the clause count" 11 (Dimacs.items t)

let test_dimacs_print_canonical () =
  (* print is a canonical form: parse∘print is the identity on it. *)
  let t = ok_exn "parse" (Dimacs.parse php_text) in
  let printed = Dimacs.print t in
  let t2 = ok_exn "reparse" (Dimacs.parse printed) in
  Alcotest.(check string) "print is a fixed point" printed (Dimacs.print t2)

let test_dimacs_multiline_clause () =
  let t = ok_exn "parse" (Dimacs.parse "p cnf 3 2\n1 2\n3 0\n-1 -2 -3 0\n") in
  Alcotest.(check int) "clauses spanning lines" 2 (Array.length t.Dimacs.clauses);
  Alcotest.(check (list int))
    "first clause" [ 1; 2; 3 ]
    (Array.to_list t.Dimacs.clauses.(0))

let test_dimacs_malformed () =
  let rejects name text =
    match Dimacs.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed input accepted" name
  in
  rejects "empty" "";
  rejects "comments only" "c nothing\n\nc here\n";
  rejects "no header" "1 2 0\n";
  rejects "bad header arity" "p cnf 3\n1 0\n";
  rejects "non-numeric header" "p cnf x 1\n1 0\n";
  rejects "negative counts" "p cnf -1 1\n1 0\n";
  rejects "duplicate header" "p cnf 1 1\np cnf 1 1\n1 0\n";
  rejects "header after clauses" "1 0\np cnf 1 1\n";
  rejects "bad literal token" "p cnf 2 1\n1 x 0\n";
  rejects "literal out of range" "p cnf 2 1\n3 0\n";
  rejects "unterminated clause" "p cnf 2 1\n1 2\n";
  (* a bare 0 is an empty clause — legal DIMACS, trivially unsatisfiable *)
  (match Dimacs.parse "p cnf 2 1\n0\n" with
  | Ok t -> Alcotest.(check int) "empty clause accepted" 1 (Array.length t.Dimacs.clauses)
  | Error m -> Alcotest.failf "empty clause rejected: %s" m);
  rejects "clause count mismatch (few)" "p cnf 2 2\n1 0\n";
  rejects "clause count mismatch (many)" "p cnf 2 1\n1 0\n2 0\n";
  rejects "unknown directive" "c lbr frobnicate 1\np cnf 1 1\n1 0\n";
  rejects "keep out of range" "c lbr keep 9\np cnf 1 1\n1 0\n";
  rejects "implies out of range" "c lbr implies 1 9\np cnf 1 1\n1 0\n"

(* Random instances rendered with noise (comments, blank lines, clauses
   split across lines) must round-trip structurally. *)
let dimacs_gen =
  QCheck.Gen.(
    let* nv = int_range 1 8 in
    let lit = map (fun (v, s) -> if s then v else -v) (pair (int_range 1 nv) bool) in
    let* clauses = list_size (int_range 1 12) (list_size (int_range 1 4) lit) in
    let nc = List.length clauses in
    let* keeps = list_size (int_bound 2) (int_range 1 nc) in
    let* implications = list_size (int_bound 2) (pair (int_range 1 nc) (int_range 1 nc)) in
    let* split = bool in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "c noise\n\n";
    List.iter (fun i -> Buffer.add_string buf (Printf.sprintf "c lbr keep %d\n" i)) keeps;
    List.iter
      (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "c lbr implies %d %d\n" i j))
      implications;
    Buffer.add_string buf (Printf.sprintf "p cnf %d %d\nc mid-stream comment\n" nv nc);
    List.iter
      (fun lits ->
        List.iter
          (fun l ->
            Buffer.add_string buf (string_of_int l);
            Buffer.add_char buf (if split then '\n' else ' '))
          lits;
        Buffer.add_string buf "0\n")
      clauses;
    return (nv, clauses, keeps, implications, Buffer.contents buf))

let prop_dimacs_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse <-> print round-trip under noise"
    (QCheck.make dimacs_gen) (fun (nv, clauses, keeps, implications, text) ->
      match Dimacs.parse text with
      | Error m -> QCheck.Test.fail_reportf "parse: %s" m
      | Ok t ->
          t.Dimacs.num_vars = nv
          && List.map Array.to_list (Array.to_list t.Dimacs.clauses) = clauses
          && t.Dimacs.keeps = keeps
          && t.Dimacs.implications = implications
          &&
          (* and the canonical form reparses to the same value *)
          match Dimacs.parse (Dimacs.print t) with
          | Error m -> QCheck.Test.fail_reportf "reparse: %s" m
          | Ok t2 -> Dimacs.print t = Dimacs.print t2)

(* ------------------------------------------------------------------ *)
(* DIMACS: reduction                                                   *)

let test_dimacs_reduce () =
  let packed = ok_exn "find" (Registry.find "dimacs") in
  let outcome, printed =
    ok_exn "reduce" (Run.reduce_text packed ~text:php_text ~spec:"")
  in
  Alcotest.(check bool) "reduction succeeded" true outcome.Run.ok;
  Alcotest.(check bool) "strictly smaller" true (outcome.Run.items1 < outcome.Run.items0);
  let reduced = ok_exn "reparse output" (Dimacs.parse printed) in
  Alcotest.(check bool)
    "still unsatisfiable" false
    (Lbr_sat.Solver.satisfiable (cnf_of_dimacs reduced));
  Alcotest.(check bool) "keep directive honoured" true (List.mem 1 reduced.Dimacs.keeps);
  (* the 9-clause pigeonhole core is minimally unsatisfiable, so only the
     satisfiable tail can go *)
  Alcotest.(check int) "reduced to the core" 9 (Array.length reduced.Dimacs.clauses)

let test_dimacs_rejects_spec_and_sat () =
  let packed = ok_exn "find" (Registry.find "dimacs") in
  (match Run.reduce_text packed ~text:php_text ~spec:"marker" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-empty spec accepted");
  match Run.reduce_text packed ~text:"p cnf 2 1\n1 2 0\n" ~spec:"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "satisfiable input accepted"

(* ------------------------------------------------------------------ *)
(* FJ: parse/print                                                     *)

let test_fj_roundtrip () =
  (* concrete syntax cannot distinguish (T) x.f from a cast of a field
     access chain in every position, so round-tripping is defined at the
     printed-string level: print∘parse is a fixed point. *)
  let p = ok_exn "parse" (Fj.parse fj_text) in
  let printed = Fj.print p in
  let p2 = ok_exn "reparse" (Fj.parse printed) in
  Alcotest.(check string) "print is a fixed point" printed (Fj.print p2)

let test_fj_figure1_roundtrip () =
  let model = Lbr_fji.Example.model () in
  let printed = Lbr_fji.Pretty.program_to_string model.Lbr_fji.Example.program in
  let p = ok_exn "parse figure 1" (Fj.parse printed) in
  Alcotest.(check string) "figure 1 round-trips" printed (Fj.print p)

let test_fj_malformed () =
  let rejects name text =
    match Fj.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed input accepted" name
  in
  rejects "unclosed class" "class A {";
  rejects "bad token" "class A ? {}";
  rejects "field after method" "class A { String m() { return x; } String f; }";
  rejects "missing return" "class A { String m() { x; } }";
  rejects "trailing garbage" "class A {}\n// main\nnew A() class";
  rejects "duplicate class" "class A {}\nclass A {}"

(* ------------------------------------------------------------------ *)
(* FJ: reduction                                                       *)

let test_fj_reduce () =
  let packed = ok_exn "find" (Registry.find "fj") in
  let outcome, printed =
    ok_exn "reduce" (Run.reduce_text packed ~text:fj_text ~spec:"class A")
  in
  Alcotest.(check bool) "reduction succeeded" true outcome.Run.ok;
  Alcotest.(check bool) "strictly smaller" true (outcome.Run.items1 < outcome.Run.items0);
  let reduced = ok_exn "reparse output" (Fj.parse printed) in
  (match Lbr_fji.Typecheck.check reduced with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reduced program does not typecheck: %a" Lbr_fji.Typecheck.pp_error e);
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "marker preserved" true (contains ~needle:"class A" printed)

let test_fj_unknown_marker () =
  let packed = ok_exn "find" (Registry.find "fj") in
  match Run.reduce_text packed ~text:fj_text ~spec:"no such text" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "marker absent from the input accepted"

(* Dependency edges never point at builtins and are self-loop free. *)
let test_fj_dependency_edges () =
  let p = ok_exn "parse" (Fj.parse fj_text) in
  let vpool = Var.Pool.create () in
  let ctx = ok_exn "derive" (Fj.derive vpool p) in
  let edges = Fj.dependency_edges ctx p in
  Alcotest.(check bool) "some edges" true (edges <> []);
  List.iter (fun (x, y) -> if x = y then Alcotest.fail "self-loop edge") edges

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let test_registry () =
  Alcotest.(check (list string)) "ids" [ "jvm"; "dimacs"; "fj" ] Registry.ids;
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Registry.find "nope" with
  | Error m ->
      Alcotest.(check bool) "error lists known frontends" true
        (List.for_all (fun id -> contains ~needle:id m) Registry.ids)
  | Ok _ -> Alcotest.fail "unknown frontend found");
  Alcotest.(check string) "by .cnf extension" "dimacs"
    (Frontend.id_of (ok_exn "for_path" (Registry.for_path "x/y.cnf")));
  Alcotest.(check string) "by .fj extension" "fj"
    (Frontend.id_of (ok_exn "for_path" (Registry.for_path "a.fj")));
  Alcotest.(check string) "by .lbrc extension" "jvm"
    (Frontend.id_of (ok_exn "for_path" (Registry.for_path "pool.lbrc")));
  match Registry.for_path "unknown.xyz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown extension resolved"

(* ------------------------------------------------------------------ *)
(* JVM frontend: equivalence with the pre-refactor pipeline            *)

let pinned_instance () =
  let pool =
    Lbr_workload.Generator.generate ~seed:7 (Lbr_workload.Generator.njr_profile ~classes:40)
  in
  let tool =
    match
      List.find_opt (fun t -> Lbr_decompiler.Tool.is_buggy_on t pool) Lbr_decompiler.Tool.all
    with
    | Some t -> t
    | None -> Alcotest.fail "no tool buggy on the pinned workload"
  in
  (pool, tool, Lbr_decompiler.Tool.errors tool pool)

let test_jvm_constraints_equivalent () =
  let pool, _, _ = pinned_instance () in
  (* pre-refactor construction, verbatim *)
  let vpool_a = Var.Pool.create () in
  let jv_a = Lbr_jvm.Jvars.derive vpool_a pool in
  let cnf_a = Lbr_jvm.Constraints.generate jv_a pool in
  (* the frontend path the harness now routes through *)
  let vpool_b = Var.Pool.create () in
  let jv_b = ok_exn "derive" (Lbr_frontend.Jvm.derive vpool_b pool) in
  let cnf_b = ok_exn "constraints" (Lbr_frontend.Jvm.constraints jv_b pool) in
  Alcotest.(check int) "same variable count" (Var.Pool.size vpool_a) (Var.Pool.size vpool_b);
  Alcotest.(check int) "same clause count" (Cnf.num_clauses cnf_a) (Cnf.num_clauses cnf_b);
  Alcotest.(check bool) "same universe" true
    (Assignment.equal (Lbr_jvm.Jvars.all jv_a) (Lbr_frontend.Jvm.universe jv_b));
  List.iter2
    (fun a b ->
      if not (Clause.equal a b) then
        Alcotest.failf "clause mismatch: %s vs %s"
          (Format.asprintf "%a" (Clause.pp vpool_a) a)
          (Format.asprintf "%a" (Clause.pp vpool_b) b))
    (Cnf.clauses cnf_a) (Cnf.clauses cnf_b)

(* Full-GBR byte identity: the refactored harness (which routes item
   inventory and constraints through Frontend_jvm) must produce exactly
   the bytes of the pre-refactor pipeline — Jvars/Constraints/Reducer
   used directly — on the pinned workload. *)
let test_jvm_gbr_byte_identical () =
  let pool, tool, baseline = pinned_instance () in
  let instance =
    {
      Lbr_harness.Corpus.instance_id = "pinned";
      benchmark = { bench_id = "pinned"; seed = 7; pool };
      tool;
      baseline_errors = baseline;
    }
  in
  let _, final_refactored = Lbr_harness.Experiment.run_with Gbr instance in
  (* pre-refactor pipeline, inlined *)
  let vpool = Var.Pool.create () in
  let jv = Lbr_jvm.Jvars.derive vpool pool in
  let cnf = Lbr_jvm.Constraints.generate jv pool in
  let sub_pool_of = Lbr_jvm.Reducer.prepare jv pool in
  let includes_sorted = Lbr_frontend.Jvm.includes_sorted in
  let predicate =
    Lbr.Predicate.make (fun phi ->
        includes_sorted ~baseline (Lbr_decompiler.Tool.errors tool (sub_pool_of phi)))
  in
  let problem =
    Lbr.Problem.make ~pool:vpool ~universe:(Lbr_jvm.Jvars.all jv) ~constraints:cnf ~predicate
  in
  let final_direct =
    match Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation vpool) with
    | Ok (result, _) -> sub_pool_of result
    | Error _ -> Alcotest.fail "direct GBR failed"
  in
  Alcotest.(check string) "byte-identical reduced pools"
    (Lbr_jvm.Serialize.to_bytes final_direct)
    (Lbr_jvm.Serialize.to_bytes final_refactored)

let test_jvm_predicate_bridge () =
  let pool, tool, _ = pinned_instance () in
  let vpool = Var.Pool.create () in
  let ctx = ok_exn "derive" (Lbr_frontend.Jvm.derive vpool pool) in
  let check =
    ok_exn "predicate" (Lbr_frontend.Jvm.predicate ctx pool ~spec:tool.Lbr_decompiler.Tool.name)
  in
  Alcotest.(check bool) "full pool reproduces" true (check pool);
  (match Lbr_frontend.Jvm.predicate ctx pool ~spec:"no-such-tool" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tool accepted");
  (* spec "" resolves to the first buggy tool, like the server *)
  let default_check = ok_exn "default spec" (Lbr_frontend.Jvm.predicate ctx pool ~spec:"") in
  Alcotest.(check bool) "default spec reproduces on full pool" true (default_check pool)

(* ------------------------------------------------------------------ *)
(* Speculative reduction: --speculate must be byte-identical to the
   sequential run on every frontend, and must never launch a worker for
   a verdict the replay journal already holds.                          *)

let test_speculate_byte_identical () =
  let jpool, tool, _ = pinned_instance () in
  let cases =
    [
      ("dimacs", php_text, "");
      ("fj", fj_text, "class A");
      ("jvm", Lbr_jvm.Serialize.to_bytes jpool, tool.Lbr_decompiler.Tool.name);
    ]
  in
  List.iter
    (fun (fe, text, spec) ->
      let packed = ok_exn "find" (Registry.find fe) in
      let seq_o, seq_printed = ok_exn "sequential" (Run.reduce_text packed ~text ~spec) in
      List.iter
        (fun jobs ->
          Lbr_runtime.Pool.with_pool ~jobs @@ fun pool ->
          let o, printed =
            ok_exn "speculative" (Run.reduce_text ~pool ~speculate:true packed ~text ~spec)
          in
          let ctx f = Printf.sprintf "%s jobs=%d: %s" fe jobs f in
          Alcotest.(check string) (ctx "byte-identical output") seq_printed printed;
          Alcotest.(check int)
            (ctx "same predicate runs")
            seq_o.Run.predicate_runs o.Run.predicate_runs;
          Alcotest.(check (float 1e-9)) (ctx "same sim time") seq_o.Run.sim_time o.Run.sim_time;
          Alcotest.(check int)
            (ctx "same timeline length")
            (List.length seq_o.Run.timeline)
            (List.length o.Run.timeline))
        [ 2; 4 ])
    cases

let spec_launched () =
  match
    List.find_opt (fun (r : Perf.row) -> r.name = "spec.launched") (Perf.aggregate ())
  with
  | Some r -> r.calls
  | None -> 0

let test_speculate_replay_launches_nothing () =
  let packed = ok_exn "find" (Registry.find "dimacs") in
  let journal : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let record_hooks =
    {
      Run.default_hooks with
      evaluate =
        Some
          (fun ~key thunk ->
            let ok = thunk () in
            Hashtbl.replace journal key ok;
            Run.Fresh ok);
    }
  in
  let _, seq_printed =
    ok_exn "recording run" (Run.reduce_text ~hooks:record_hooks packed ~text:php_text ~spec:"")
  in
  let fresh = ref 0 in
  let replay_hooks =
    {
      Run.default_hooks with
      evaluate =
        Some
          (fun ~key thunk ->
            match Hashtbl.find_opt journal key with
            | Some ok -> Run.Replayed ok
            | None ->
                incr fresh;
                Run.Fresh (thunk ()));
      peek = Some (fun ~key -> Hashtbl.find_opt journal key);
    }
  in
  let before = spec_launched () in
  ( Lbr_runtime.Pool.with_pool ~jobs:2 @@ fun pool ->
    let o, printed =
      ok_exn "replayed run"
        (Run.reduce_text ~hooks:replay_hooks ~pool ~speculate:true packed ~text:php_text
           ~spec:"")
    in
    Alcotest.(check string) "byte-identical output" seq_printed printed;
    Alcotest.(check int) "no fresh executions on replay" 0 !fresh;
    Alcotest.(check bool) "runs were replayed" true (o.Run.replayed_runs > 0) );
  Alcotest.(check int) "no speculative launches on a replayed workload" before
    (spec_launched ())

(* ------------------------------------------------------------------ *)
(* Wire v4: the frontend tag                                           *)

let wire_spec frontend =
  {
    Lbr_server.Wire.tool = "";
    strategy = Lbr_harness.Experiment.Gbr;
    priority = Lbr_server.Wire.Normal;
    crash_policy = Lbr_runtime.Oracle.Crash_raises;
    retries = 2;
    pool_bytes = "payload";
    frontend;
    trace_ctx = None;
  }

let test_wire_frontend_tag () =
  let module Wire = Lbr_server.Wire in
  (* jvm frames carry no tag: payload is byte-identical to v3 *)
  let jvm = wire_spec "jvm" in
  let strip_frame s = String.sub s 4 (String.length s - 4) in
  let jvm_bytes = strip_frame (Wire.encode (Wire.Submit jvm)) in
  let tagged_bytes = strip_frame (Wire.encode (Wire.Submit (wire_spec "dimacs"))) in
  Alcotest.(check int) "tag costs len16 + bytes"
    (String.length jvm_bytes + 2 + String.length "dimacs")
    (String.length tagged_bytes);
  (* round-trips *)
  let roundtrip msg =
    match Wire.decode_payload (strip_frame (Wire.encode msg)) with
    | Ok m -> m
    | Error m -> Alcotest.failf "decode: %s" m
  in
  (match roundtrip (Wire.Submit (wire_spec "fj")) with
  | Wire.Submit spec -> Alcotest.(check string) "submit tag survives" "fj" spec.Wire.frontend
  | _ -> Alcotest.fail "wrong message");
  (match roundtrip (Wire.Submit_seeded { spec = wire_spec "dimacs"; seeds = [ ("k", true) ] })
   with
  | Wire.Submit_seeded { spec; seeds } ->
      Alcotest.(check string) "seeded tag survives" "dimacs" spec.Wire.frontend;
      Alcotest.(check int) "seeds survive" 1 (List.length seeds)
  | _ -> Alcotest.fail "wrong message");
  (* a v3 frame (no tag) decodes with the jvm default *)
  (match roundtrip (Wire.Submit jvm) with
  | Wire.Submit spec -> Alcotest.(check string) "v3 default" "jvm" spec.Wire.frontend
  | _ -> Alcotest.fail "wrong message");
  (* journal spec records round-trip the tag too *)
  let spec = wire_spec "fj" in
  (match Wire.spec_of_string (Wire.spec_to_string spec) with
  | Ok s -> Alcotest.(check string) "journal tag survives" "fj" s.Wire.frontend
  | Error m -> Alcotest.failf "spec_of_string: %s" m);
  match Wire.spec_of_string (Wire.spec_to_string jvm) with
  | Ok s -> Alcotest.(check string) "journal jvm default" "jvm" s.Wire.frontend
  | Error m -> Alcotest.failf "spec_of_string: %s" m

let test_cache_key_frontend () =
  let a = Lbr_cluster.Cache.job_key (wire_spec "jvm") in
  let b = Lbr_cluster.Cache.job_key (wire_spec "dimacs") in
  Alcotest.(check bool) "frontend is verdict-relevant" true (a <> b)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "frontend"
    [
      ( "dimacs",
        [
          Alcotest.test_case "parse php.cnf" `Quick test_dimacs_parse;
          Alcotest.test_case "print is canonical" `Quick test_dimacs_print_canonical;
          Alcotest.test_case "clauses span lines" `Quick test_dimacs_multiline_clause;
          Alcotest.test_case "malformed inputs are Errors" `Quick test_dimacs_malformed;
          Alcotest.test_case "reduce pigeonhole to its core" `Quick test_dimacs_reduce;
          Alcotest.test_case "spec and SAT inputs rejected" `Quick
            test_dimacs_rejects_spec_and_sat;
        ] );
      qsuite "dimacs-prop" [ prop_dimacs_roundtrip ];
      ( "fj",
        [
          Alcotest.test_case "print is a parse fixed point" `Quick test_fj_roundtrip;
          Alcotest.test_case "figure 1 round-trips" `Quick test_fj_figure1_roundtrip;
          Alcotest.test_case "malformed inputs are Errors" `Quick test_fj_malformed;
          Alcotest.test_case "reduce keeps marker, typechecks" `Quick test_fj_reduce;
          Alcotest.test_case "absent marker rejected" `Quick test_fj_unknown_marker;
          Alcotest.test_case "dependency edges well-formed" `Quick test_fj_dependency_edges;
        ] );
      ( "registry",
        [ Alcotest.test_case "ids, find, for_path" `Quick test_registry ] );
      ( "jvm-equivalence",
        [
          Alcotest.test_case "constraints identical to pre-refactor" `Quick
            test_jvm_constraints_equivalent;
          Alcotest.test_case "full GBR byte-identical" `Quick test_jvm_gbr_byte_identical;
          Alcotest.test_case "predicate bridge" `Quick test_jvm_predicate_bridge;
        ] );
      ( "speculate",
        [
          Alcotest.test_case "byte-identical on every frontend" `Quick
            test_speculate_byte_identical;
          Alcotest.test_case "replayed workload launches nothing" `Quick
            test_speculate_replay_launches_nothing;
        ] );
      ( "wire-v4",
        [
          Alcotest.test_case "frontend tag encoding" `Quick test_wire_frontend_tag;
          Alcotest.test_case "cache key includes frontend" `Quick test_cache_key_frontend;
        ] );
    ]
