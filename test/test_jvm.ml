(* Tests for the bytecode substrate: hierarchy queries, the checker, item
   inventory, constraint soundness, and the reducer. *)

open Lbr_logic
open Lbr_jvm
open Lbr_jvm.Classfile

(* A small hand-built pool exercising every hierarchy feature:

     interface I0 { im0 }          interface I1 extends I0 { im1 }
     abstract class A implements I1 { abstract am; concrete im0 }
     class B extends A implements I0 { am, im1, m; 2 ctors; field f }
     class C { main body referencing everything }                       *)
let imeth name = { m_name = name; m_params = []; m_ret = Jtype.Int; m_static = false;
                   m_abstract = true; m_body = [] }

let conc ?(static = false) name body =
  { m_name = name; m_params = []; m_ret = Jtype.Int; m_static = static;
    m_abstract = false; m_body = body }

let sample_pool () =
  let i0 = { name = "app/I0"; super = object_name; interfaces = []; is_interface = true;
             is_abstract = true; fields = []; methods = [ imeth "im0" ]; ctors = [];
             annotations = []; inner_classes = [] } in
  let i1 = { i0 with name = "app/I1"; interfaces = [ "app/I0" ]; methods = [ imeth "im1" ] } in
  let a = { name = "app/A"; super = object_name; interfaces = [ "app/I1" ];
            is_interface = false; is_abstract = true; fields = [];
            methods = [ imeth "am"; conc "im0" [ Arith; Return_insn ] ];
            ctors = [ { k_params = []; k_body = [ Return_insn ] } ];
            annotations = []; inner_classes = [] } in
  let b = { name = "app/B"; super = "app/A"; interfaces = [ "app/I0" ]; is_interface = false;
            is_abstract = false;
            fields = [ { f_name = "f"; f_type = Jtype.Ref "app/A"; f_static = false } ];
            methods =
              [ conc "am" [ Return_insn ]; conc "im1" [ Return_insn ];
                conc "m" [ Invoke_interface { owner = "app/I1"; meth = "im0" }; Return_insn ];
                conc ~static:true "s" [ Return_insn ] ];
            ctors =
              [ { k_params = []; k_body = [ Return_insn ] };
                { k_params = [ Jtype.Int ]; k_body = [ Arith; Return_insn ] } ];
            annotations = [ "app/A" ]; inner_classes = [ "app/C" ] } in
  let c = { name = "app/C"; super = object_name; interfaces = []; is_interface = false;
            is_abstract = false; fields = [];
            methods =
              [ conc "main"
                  [ New_instance { cls = "app/B"; ctor = 1 };
                    Invoke_virtual { owner = "app/B"; meth = "im0" };
                    Invoke_static { owner = "app/B"; meth = "s" };
                    Get_field { owner = "app/B"; field = "f" };
                    Check_cast "app/I0";
                    Upcast { from_ = "app/B"; to_ = "app/I0" };
                    Load_const_class "app/B";
                    Return_insn ] ];
            ctors = [ { k_params = []; k_body = [ Return_insn ] } ];
            annotations = []; inner_classes = [] } in
  Classpool.of_classes [ i0; i1; a; b; c ]

let test_sample_valid () =
  let violations = Checker.check (sample_pool ()) in
  List.iter (fun v -> Format.printf "%a@." Checker.pp_violation v) violations;
  Alcotest.(check int) "sample pool is valid" 0 (List.length violations)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)

let test_super_chain () =
  let pool = sample_pool () in
  Alcotest.(check (list string)) "chain of B" [ "app/B"; "app/A"; object_name ]
    (Hierarchy.super_chain pool "app/B")

let test_subtype_paths () =
  let pool = sample_pool () in
  (* B <= I0 two ways: directly, and via A implements I1 extends I0. *)
  let paths = Hierarchy.subtype_paths pool ~sub:"app/B" ~sup:"app/I0" in
  Alcotest.(check int) "two witnesses" 2 (List.length paths);
  Alcotest.(check int) "none to unrelated" 0
    (List.length (Hierarchy.subtype_paths pool ~sub:"app/C" ~sup:"app/I0"))

let test_method_candidates () =
  let pool = sample_pool () in
  (* im0 on B resolves on A (concrete def) and on I0 (abstract). *)
  let c = Hierarchy.method_candidates pool ~owner:"app/B" ~meth:"im0" ~static:false in
  let owners = List.map fst c |> List.sort_uniq compare in
  Alcotest.(check (list string)) "resolution owners" [ "app/A"; "app/I0" ] owners;
  (* static method with matching staticness only *)
  let s = Hierarchy.method_candidates pool ~owner:"app/B" ~meth:"s" ~static:true in
  Alcotest.(check bool) "static found" true (s <> []);
  Alcotest.(check (list string)) "no instance match for s" []
    (List.map fst (Hierarchy.method_candidates pool ~owner:"app/B" ~meth:"s" ~static:false));
  (* external owner resolves trivially *)
  Alcotest.(check bool) "external trivially resolves" true
    (Hierarchy.method_candidates pool ~owner:"java/lang/String" ~meth:"length" ~static:false
    = [ ("", []) ])

let test_abstract_obligations () =
  let pool = sample_pool () in
  let b = Option.get (Classpool.find pool "app/B") in
  let names = Hierarchy.abstract_obligations pool b |> List.sort_uniq compare in
  Alcotest.(check (list (pair string string))) "obligations of B"
    [ ("app/A", "am"); ("app/I0", "im0"); ("app/I1", "im1") ]
    names

(* ------------------------------------------------------------------ *)
(* Checker: seeded corruptions must be caught                          *)

let corrupt_and_check mutate expected_fragment =
  let pool = sample_pool () in
  let classes = Classpool.classes pool |> List.map mutate in
  let violations = Checker.check (Classpool.of_classes classes) in
  let found =
    List.exists
      (fun (v : Checker.violation) ->
        let s = Format.asprintf "%a" Checker.pp_violation v in
        let n = String.length expected_fragment in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = expected_fragment || go (i + 1))
        in
        go 0)
      violations
  in
  Alcotest.(check bool) (Printf.sprintf "catches %S" expected_fragment) true found

let test_checker_missing_class () =
  corrupt_and_check
    (fun c -> if c.name = "app/C" then { c with inner_classes = [ "app/Ghost" ] } else c)
    "missing class app/Ghost"

let test_checker_unresolved_method () =
  corrupt_and_check
    (fun c ->
      if c.name = "app/B" then
        { c with
          methods =
            List.filter (fun m -> m.m_name <> "m") c.methods
            @ [ conc "m" [ Invoke_virtual { owner = "app/C"; meth = "nope" }; Return_insn ] ]
        }
      else c)
    "unresolved method"

let test_checker_missing_implementation () =
  corrupt_and_check
    (fun c ->
      if c.name = "app/B" then
        { c with methods = List.filter (fun m -> m.m_name <> "am") c.methods }
      else c)
    "missing implementation of am"

let test_checker_missing_ctor () =
  corrupt_and_check
    (fun c -> if c.name = "app/B" then { c with ctors = [ List.hd c.ctors ] } else c)
    "missing constructor #1"

let test_checker_bad_upcast () =
  (* both witnesses must go: B's own implements and the one through A *)
  corrupt_and_check
    (fun c ->
      if c.name = "app/B" || c.name = "app/A" then { c with interfaces = [] } else c)
    "app/B is not a subtype of app/I0"

let test_checker_abstract_new () =
  corrupt_and_check
    (fun c -> if c.name = "app/B" then { c with is_abstract = true } else c)
    "new on abstract class"

(* ------------------------------------------------------------------ *)
(* Items and variables                                                 *)

let test_item_inventory () =
  let pool = sample_pool () in
  let items = Jvars.items_of_pool pool in
  let count pred = List.length (List.filter pred items) in
  Alcotest.(check int) "classes" 5 (count (function Item.Class _ -> true | _ -> false));
  Alcotest.(check int) "extends (only B has internal super)" 1
    (count (function Item.Extends _ -> true | _ -> false));
  Alcotest.(check int) "implements" 2 (count (function Item.Implements _ -> true | _ -> false));
  Alcotest.(check int) "iface extends" 1
    (count (function Item.Iface_extends _ -> true | _ -> false));
  Alcotest.(check int) "ctors" 4 (count (function Item.Ctor _ -> true | _ -> false));
  Alcotest.(check int) "fields" 1 (count (function Item.Field _ -> true | _ -> false));
  let names = List.map Item.to_string items in
  Alcotest.(check int) "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_jvars_roundtrip () =
  let pool = sample_pool () in
  let vpool = Var.Pool.create () in
  let jv = Jvars.derive vpool pool in
  List.iter
    (fun item ->
      let v = Jvars.var jv item in
      Alcotest.(check bool) "item_of inverse" true (Item.equal (Jvars.item_of jv v) item))
    (Jvars.items jv)

(* ------------------------------------------------------------------ *)
(* Constraints and reducer                                             *)

let context pool =
  let vpool = Var.Pool.create () in
  let jv = Jvars.derive vpool pool in
  let cnf = Constraints.generate jv pool in
  (vpool, jv, cnf)

let test_full_assignment_satisfies () =
  let pool = sample_pool () in
  let _, jv, cnf = context pool in
  Alcotest.(check bool) "R(I)" true (Cnf.holds cnf (Jvars.all jv))

let prop_constraint_soundness =
  QCheck.Test.make ~count:60 ~name:"satisfying assignments reduce to checker-valid pools"
    QCheck.(make Gen.(pair (int_range 1 1000) (int_bound 999)))
    (fun (pool_seed, req_seed) ->
      let profile = { Lbr_workload.Generator.default_profile with classes = 18 } in
      let pool = Lbr_workload.Generator.generate ~seed:pool_seed profile in
      let vpool, jv, cnf = context pool in
      let order = Lbr_sat.Order.by_creation vpool in
      let universe = Jvars.all jv in
      let rng = Random.State.make [| req_seed |] in
      let required = Assignment.filter (fun _ -> Random.State.float rng 1.0 < 0.08) universe in
      match Lbr_sat.Msa.compute cnf ~order ~universe ~required () with
      | None -> false
      | Some phi -> Cnf.holds cnf phi && Checker.is_valid (Reducer.apply jv pool phi))

let test_reducer_full_assignment_identity () =
  let pool = sample_pool () in
  let _, jv, _ = context pool in
  let reduced = Reducer.apply jv pool (Jvars.all jv) in
  Alcotest.(check int) "same classes" (Size.classes pool) (Size.classes reduced);
  Alcotest.(check int) "same bytes" (Size.bytes pool) (Size.bytes reduced);
  Alcotest.(check int) "same items" (Size.items pool) (Size.items reduced)

let test_reducer_empty_assignment () =
  let pool = sample_pool () in
  let _, jv, _ = context pool in
  let reduced = Reducer.apply jv pool Assignment.empty in
  Alcotest.(check int) "no classes" 0 (Size.classes reduced);
  Alcotest.(check bool) "empty pool is valid" true (Checker.is_valid reduced)

let test_reducer_stubs_code () =
  let pool = sample_pool () in
  let _, jv, _ = context pool in
  let phi =
    Assignment.of_list
      [ Jvars.var jv (Item.Class "app/C");
        Jvars.var jv (Item.Method { cls = "app/C"; meth = "main" }) ]
  in
  let reduced = Reducer.apply jv pool phi in
  match Classpool.find reduced "app/C" with
  | None -> Alcotest.fail "C missing"
  | Some c -> (
      match find_method c "main" with
      | None -> Alcotest.fail "main missing"
      | Some m -> Alcotest.(check bool) "stubbed" true (m.m_body = [ Return_insn ]))

let test_reducer_extends_reparent () =
  let pool = sample_pool () in
  let _, jv, _ = context pool in
  let phi = Assignment.of_list [ Jvars.var jv (Item.Class "app/B") ] in
  let reduced = Reducer.apply jv pool phi in
  match Classpool.find reduced "app/B" with
  | None -> Alcotest.fail "B missing"
  | Some b -> Alcotest.(check string) "reparented to Object" object_name b.super

let test_reducer_ctor_renumbering () =
  let pool = sample_pool () in
  let _, jv, _ = context pool in
  (* drop B's ctor #0; C's New_instance of ctor #1 must renumber to #0 *)
  let phi = Jvars.all jv in
  let phi = Assignment.remove (Jvars.var jv (Item.Ctor { cls = "app/B"; index = 0 })) phi in
  let phi = Assignment.remove (Jvars.var jv (Item.Ctor_code { cls = "app/B"; index = 0 })) phi in
  let reduced = Reducer.apply jv pool phi in
  (match Classpool.find reduced "app/B" with
  | None -> Alcotest.fail "B missing"
  | Some b -> Alcotest.(check int) "one ctor left" 1 (List.length b.ctors));
  match Classpool.find reduced "app/C" with
  | None -> Alcotest.fail "C missing"
  | Some c ->
      let main = Option.get (find_method c "main") in
      let has_renumbered =
        List.exists
          (function New_instance { cls = "app/B"; ctor = 0 } -> true | _ -> false)
          main.m_body
      in
      Alcotest.(check bool) "New_instance renumbered" true has_renumbered;
      Alcotest.(check bool) "still valid" true (Checker.is_valid reduced)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let test_serialize_roundtrip_sample () =
  let pool = sample_pool () in
  match Serialize.of_bytes (Serialize.to_bytes pool) with
  | Error m -> Alcotest.failf "deserialization failed: %s" m
  | Ok pool' ->
      Alcotest.(check (list string)) "same classes" (Classpool.names pool) (Classpool.names pool');
      Alcotest.(check bool) "structurally equal" true
        (Classpool.classes pool = Classpool.classes pool')

let prop_serialize_roundtrip =
  QCheck.Test.make ~count:60 ~name:"serialize/deserialize round-trips generated pools"
    QCheck.(make Gen.(int_range 1 10_000))
    (fun seed ->
      let pool =
        Lbr_workload.Generator.generate ~seed
          { Lbr_workload.Generator.default_profile with classes = 20 }
      in
      match Serialize.of_bytes (Serialize.to_bytes pool) with
      | Error _ -> false
      | Ok pool' -> Classpool.classes pool = Classpool.classes pool')

let test_serialize_rejects_garbage () =
  (match Serialize.of_bytes "not a class pool" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  (match Serialize.of_bytes "" with
  | Ok _ -> Alcotest.fail "accepted empty"
  | Error _ -> ());
  (* truncation *)
  let bytes = Serialize.to_bytes (sample_pool ()) in
  match Serialize.of_bytes (String.sub bytes 0 (String.length bytes / 2)) with
  | Ok _ -> Alcotest.fail "accepted truncated input"
  | Error _ -> ()

(* The server feeds of_bytes/class_of_bytes attacker-shaped bytes straight
   off a socket: every truncation and every bit flip must come back as
   [Error _] — an exception here is a daemon crash. *)
let never_raises ~what parse data =
  match parse data with
  | (Ok _ : (_, string) result) -> true
  | Error _ -> true
  | exception e ->
      QCheck.Test.fail_reportf "%s raised %s on %S" what (Printexc.to_string e)
        (String.escaped (String.sub data 0 (min 64 (String.length data))))

let prop_serialize_truncation_safe =
  QCheck.Test.make ~count:100 ~name:"of_bytes: truncated inputs give Error, never raise"
    QCheck.(make Gen.(pair (int_range 1 5_000) (int_bound 10_000)))
    (fun (seed, cut) ->
      let pool =
        Lbr_workload.Generator.generate ~seed
          { Lbr_workload.Generator.default_profile with classes = 12 }
      in
      let bytes = Serialize.to_bytes pool in
      let cut = cut mod String.length bytes in
      let truncated = String.sub bytes 0 cut in
      never_raises ~what:"of_bytes" Serialize.of_bytes truncated
      && never_raises ~what:"class_of_bytes" Serialize.class_of_bytes truncated
      &&
      match Serialize.of_bytes truncated with
      | Ok _ -> cut = String.length bytes (* only the untruncated input may parse *)
      | Error _ -> true)

let prop_serialize_bitflip_safe =
  QCheck.Test.make ~count:200 ~name:"of_bytes: bit-flipped inputs give Ok or Error, never raise"
    QCheck.(make Gen.(triple (int_range 1 5_000) (int_bound 100_000) (int_bound 7)))
    (fun (seed, pos, bit) ->
      let pool =
        Lbr_workload.Generator.generate ~seed
          { Lbr_workload.Generator.default_profile with classes = 12 }
      in
      let bytes = Bytes.of_string (Serialize.to_bytes pool) in
      let pos = pos mod Bytes.length bytes in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)));
      let flipped = Bytes.to_string bytes in
      never_raises ~what:"of_bytes" Serialize.of_bytes flipped
      && never_raises ~what:"class_of_bytes" Serialize.class_of_bytes flipped)

let prop_serialize_random_bytes_safe =
  QCheck.Test.make ~count:200 ~name:"of_bytes: arbitrary bytes give Error, never raise"
    QCheck.(string_gen Gen.char)
    (fun data ->
      (* arbitrary strings are overwhelmingly not valid pools, but the only
         contract is: no exception escapes *)
      never_raises ~what:"of_bytes" Serialize.of_bytes data
      && never_raises ~what:"class_of_bytes" Serialize.class_of_bytes data)

let test_serialize_deep_array_nesting_safe () =
  (* a class whose first field's type is tag-6 ("array of") repeated: an
     unbounded reader would recurse once per byte *)
  let b = Buffer.create 256 in
  let u16 n =
    Buffer.add_char b (Char.chr (n lsr 8));
    Buffer.add_char b (Char.chr (n land 0xFF))
  in
  u16 1 (* strtab count *);
  u16 1;
  Buffer.add_string b "A" (* one string "A" *);
  u16 0 (* name *);
  u16 0 (* super *);
  Buffer.add_char b '\000' (* flags *);
  u16 0 (* interfaces *);
  u16 1 (* one field *);
  u16 0 (* f_name *);
  Buffer.add_string b (String.make 100_000 '\006') (* Array (Array (... *);
  match Serialize.class_of_bytes (Buffer.contents b) with
  | Ok _ -> Alcotest.fail "accepted absurdly nested array type"
  | Error _ -> ()
  | exception e -> Alcotest.failf "raised %s" (Printexc.to_string e)

let test_serialize_file_io () =
  let pool = sample_pool () in
  let path = Filename.temp_file "lbr" ".pool" in
  Serialize.write_file path pool;
  let result = Serialize.read_file path in
  Sys.remove path;
  match result with
  | Error m -> Alcotest.failf "read_file: %s" m
  | Ok pool' ->
      Alcotest.(check bool) "file round-trip" true
        (Classpool.classes pool = Classpool.classes pool');
      Alcotest.(check int) "serialized_size = file size" (Serialize.serialized_size pool)
        (String.length (Serialize.to_bytes pool'))

let test_serialized_size_shrinks () =
  let pool = sample_pool () in
  let _, jv, _ = context pool in
  let reduced = Reducer.apply jv pool Assignment.empty in
  Alcotest.(check bool) "empty pool serializes smaller" true
    (Serialize.serialized_size reduced < Serialize.serialized_size pool)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lbr_jvm"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "sample valid" `Quick test_sample_valid;
          Alcotest.test_case "super chain" `Quick test_super_chain;
          Alcotest.test_case "subtype paths" `Quick test_subtype_paths;
          Alcotest.test_case "method candidates" `Quick test_method_candidates;
          Alcotest.test_case "abstract obligations" `Quick test_abstract_obligations;
        ] );
      ( "checker",
        [
          Alcotest.test_case "missing class" `Quick test_checker_missing_class;
          Alcotest.test_case "unresolved method" `Quick test_checker_unresolved_method;
          Alcotest.test_case "missing implementation" `Quick test_checker_missing_implementation;
          Alcotest.test_case "missing ctor" `Quick test_checker_missing_ctor;
          Alcotest.test_case "bad upcast" `Quick test_checker_bad_upcast;
          Alcotest.test_case "new on abstract" `Quick test_checker_abstract_new;
        ] );
      ( "items",
        [
          Alcotest.test_case "inventory" `Quick test_item_inventory;
          Alcotest.test_case "jvars roundtrip" `Quick test_jvars_roundtrip;
        ] );
      ( "constraints",
        [ Alcotest.test_case "full assignment satisfies" `Quick test_full_assignment_satisfies ]
      );
      qsuite "constraints-prop" [ prop_constraint_soundness ];
      ( "serialize",
        [
          Alcotest.test_case "sample round-trip" `Quick test_serialize_roundtrip_sample;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
          Alcotest.test_case "deep array nesting" `Quick test_serialize_deep_array_nesting_safe;
          Alcotest.test_case "file io" `Quick test_serialize_file_io;
          Alcotest.test_case "size shrinks" `Quick test_serialized_size_shrinks;
        ] );
      qsuite "serialize-prop"
        [
          prop_serialize_roundtrip;
          prop_serialize_truncation_safe;
          prop_serialize_bitflip_safe;
          prop_serialize_random_bytes_safe;
        ];
      ( "reducer",
        [
          Alcotest.test_case "identity on full assignment" `Quick
            test_reducer_full_assignment_identity;
          Alcotest.test_case "empty assignment" `Quick test_reducer_empty_assignment;
          Alcotest.test_case "stub bodies" `Quick test_reducer_stubs_code;
          Alcotest.test_case "extends reparenting" `Quick test_reducer_extends_reparent;
          Alcotest.test_case "ctor renumbering" `Quick test_reducer_ctor_renumbering;
        ] );
    ]
