(* Tests for the reduction service: wire codec totality and round-trips,
   the write-ahead journal, scheduler admission/backpressure/cancellation
   (with stub runners), crash-resume replay with the real runner, and the
   socket server end to end against in-process reference runs. *)

open Lbr_server

let qsuite name props = (name, List.map QCheck_alcotest.to_alcotest props)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

let fresh_dir =
  let counter = ref 0 in
  fun label ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lbr-server-test-%d-%d-%s" (Unix.getpid ()) !counter label)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm dir;
    Unix.mkdir dir 0o755;
    dir

let pool_bytes_of_seed ?(classes = 18) seed =
  Lbr_jvm.Serialize.to_bytes
    (Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes))

let spec_of_seed ?classes ?(priority = Wire.Normal)
    ?(strategy = Lbr_harness.Experiment.Gbr) seed =
  {
    Wire.tool = "";
    strategy;
    priority;
    crash_policy = Lbr_runtime.Oracle.Crash_raises;
    retries = 0;
    pool_bytes = pool_bytes_of_seed ?classes seed;
    frontend = "jvm";
    trace_ctx = None;
  }

(* The in-process reference for what the service should compute on
   [spec_of_seed seed]: same pool, same tool-resolution rule as
   Runner.reduce. *)
let reference_run ?classes ?(strategy = Lbr_harness.Experiment.Gbr) seed =
  let pool =
    match Lbr_jvm.Serialize.of_bytes (pool_bytes_of_seed ?classes seed) with
    | Ok pool -> pool
    | Error m -> Alcotest.failf "reference pool does not decode: %s" m
  in
  let tool =
    match
      List.find_opt (fun t -> Lbr_decompiler.Tool.is_buggy_on t pool) Lbr_decompiler.Tool.all
    with
    | Some t -> t
    | None -> Alcotest.failf "seed %d: no tool is buggy; pick another fixture seed" seed
  in
  let instance =
    {
      Lbr_harness.Corpus.instance_id = Printf.sprintf "ref-%d" seed;
      benchmark = { Lbr_harness.Corpus.bench_id = Printf.sprintf "ref-%d" seed; seed; pool };
      tool;
      baseline_errors = Lbr_decompiler.Tool.errors tool pool;
    }
  in
  let outcome, final = Lbr_harness.Experiment.run_with strategy instance in
  (outcome, Lbr_jvm.Serialize.to_bytes final)

let some_stats =
  {
    Wire.ok = true;
    predicate_runs = 123;
    replayed_runs = 7;
    tool_executions = 130;
    oracle_retries = 4;
    oracle_crashes = 1;
    sim_time = 34.5;
    wall_time = 0.75;
    classes0 = 30;
    classes1 = 7;
    bytes0 = 21862;
    bytes1 = 1914;
  }

let some_ctx =
  Some { Lbr_obs.Trace.Context.trace_id = "00deadbeef00cafe"; parent_span = "0123456789abcdef" }

let sample_messages =
  [
    Wire.Hello 1;
    Wire.Hello_ok 1;
    Wire.Submit (spec_of_seed ~classes:6 1);
    Wire.Submit { (spec_of_seed ~classes:6 1) with Wire.trace_ctx = some_ctx };
    Wire.Submit
      { (spec_of_seed ~classes:6 1) with Wire.frontend = "dimacs"; trace_ctx = some_ctx };
    Wire.Submit_seeded
      {
        spec = spec_of_seed ~classes:6 1;
        seeds = [ (String.make 32 'a', true); (String.make 32 'b', false) ];
      };
    Wire.Submit_seeded
      {
        spec = { (spec_of_seed ~classes:6 1) with Wire.trace_ctx = some_ctx };
        seeds = [ (String.make 32 'a', true) ];
      };
    Wire.Verdict
      { job_id = "job-000042"; key = String.make 32 'c'; ok = true; ctx = None };
    Wire.Verdict
      { job_id = "job-000042"; key = String.make 32 'c'; ok = false; ctx = some_ctx };
    Wire.Trace_dump_request;
    Wire.Trace_dump_reply
      {
        node = "127.0.0.1:7421";
        epoch = 1754700000.125;
        server_now = 1754700012.5;
        dropped = 3;
        events =
          [
            {
              Lbr_obs.Trace.ev_name = "coordinator.job";
              ev_ph = 'X';
              ev_ts = 120.5;
              ev_dur = 880.25;
              ev_tid = 0;
              ev_args =
                [ ("job", Lbr_obs.Trace.Str "job-000042"); ("attempts", Lbr_obs.Trace.Int 1) ];
            };
            {
              Lbr_obs.Trace.ev_name = "spec.launch";
              ev_ph = 'i';
              ev_ts = 130.;
              ev_dur = 0.;
              ev_tid = 2;
              ev_args = [ ("waste", Lbr_obs.Trace.Float 0.25); ("hot", Lbr_obs.Trace.Bool true) ];
            };
          ];
      };
    Wire.Metrics_dump_request;
    Wire.Metrics_dump_reply
      {
        node = "127.0.0.1:7421";
        dump =
          [
            ("lbr_jobs_total", "jobs", Lbr_obs.Metrics.D_counter 42);
            ("lbr_queue_depth", "", Lbr_obs.Metrics.D_gauge 2.5);
            ( "lbr_latency_seconds",
              "verdict latency",
              Lbr_obs.Metrics.D_hist
                { d_lo = 0.001; d_growth = 2.0; d_counts = [| 1; 0; 3 |]; d_sum = 0.75 } );
          ];
      };
    Wire.Accepted "job-000042";
    Wire.Rejected { reason = "queue full"; retry_after = 2.5 };
    Wire.Cancel "job-000042";
    Wire.Cancel_ok { job_id = "job-000042"; found = true };
    Wire.Progress { job_id = "job-000042"; sim_time = 17.25; classes = 12; bytes = 4096 };
    Wire.Result { job_id = "job-000042"; stats = some_stats; pool_bytes = "LBRC-ish bytes" };
    Wire.Job_failed { job_id = "job-000042"; reason = "tool is not buggy" };
    Wire.Protocol_error "expected hello";
    Wire.Stats_request;
    Wire.Stats_reply
      {
        Wire.queued_jobs = 2;
        running_jobs = 1;
        job_stats =
          [
            { Wire.js_id = "job-000001"; js_running = true; js_best = Some (12.5, 9, 4210) };
            { Wire.js_id = "job-000002"; js_running = false; js_best = None };
          ];
        oracle_queries = 321;
        oracle_memo_hits = 45;
        uptime = 98.5;
        metrics_text = "# TYPE lbr_oracle_queries_total counter\nlbr_oracle_queries_total 321\n";
      };
  ]

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let check_message_equal what (a : Wire.message) (b : Wire.message) =
  (* structural equality is fine: messages are immutable data *)
  Alcotest.(check bool) what true (a = b)

let test_wire_roundtrip () =
  List.iter
    (fun msg ->
      let frame = Wire.encode msg in
      (* strip the length prefix to get the payload back *)
      let payload = String.sub frame 4 (String.length frame - 4) in
      match Wire.decode_payload payload with
      | Ok decoded -> check_message_equal "roundtrip" msg decoded
      | Error m -> Alcotest.failf "decode failed: %s" m)
    sample_messages

let test_wire_socket_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  List.iter
    (fun msg ->
      Wire.write_message a msg;
      match Wire.read_message b with
      | Ok decoded -> check_message_equal "socket roundtrip" msg decoded
      | Error `Closed -> Alcotest.fail "unexpected close"
      | Error (`Malformed m) -> Alcotest.failf "malformed: %s" m)
    sample_messages;
  Unix.close a;
  (match Wire.read_message b with
  | Error `Closed -> ()
  | _ -> Alcotest.fail "expected Closed after peer shutdown");
  Unix.close b

let test_wire_rejects_oversized_and_truncated () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* length prefix larger than max_frame *)
  let huge = Bytes.create 4 in
  Bytes.set huge 0 '\xff';
  Bytes.set huge 1 '\xff';
  Bytes.set huge 2 '\xff';
  Bytes.set huge 3 '\xff';
  ignore (Unix.write a huge 0 4 : int);
  (match Wire.read_message b with
  | Error (`Malformed _) -> ()
  | _ -> Alcotest.fail "oversized frame must be malformed");
  Unix.close a;
  Unix.close b;
  (* frame body cut short by a closing peer *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let frame = Wire.encode (Wire.Accepted "job-000001") in
  ignore (Unix.write_substring a frame 0 (String.length frame - 3) : int);
  Unix.close a;
  (match Wire.read_message b with
  | Error (`Malformed _) -> ()
  | _ -> Alcotest.fail "truncated frame must be malformed");
  Unix.close b

let test_wire_empty_frame_is_malformed () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ignore (Unix.write a (Bytes.make 4 '\000') 0 4 : int);
  (match Wire.read_message b with
  | Error (`Malformed _) -> ()
  | _ -> Alcotest.fail "empty frame must be malformed");
  Unix.close a;
  Unix.close b

(* decode_payload must be total on adversarial input *)
let prop_wire_decode_never_raises =
  QCheck.Test.make ~count:500 ~name:"decode_payload never raises on random bytes"
    QCheck.(string_of_size Gen.(0 -- 2048))
    (fun data ->
      match Wire.decode_payload data with Ok _ | Error _ -> true)

let prop_wire_truncation_rejected =
  QCheck.Test.make ~count:300 ~name:"truncated payloads decode to Error or valid prefix"
    QCheck.(pair (int_bound (List.length sample_messages - 1)) (int_bound 1000))
    (fun (i, cut) ->
      let msg = List.nth sample_messages i in
      let frame = Wire.encode msg in
      let payload = String.sub frame 4 (String.length frame - 4) in
      let keep = cut * (String.length payload - 1) / 1000 in
      let truncated = String.sub payload 0 keep in
      match Wire.decode_payload truncated with
      | Ok _ -> false (* a strict prefix can never be a whole message *)
      | Error _ -> true)

let prop_wire_bitflip_never_raises =
  QCheck.Test.make ~count:300 ~name:"bit-flipped payloads never raise"
    QCheck.(pair (int_bound (List.length sample_messages - 1)) (pair small_nat (int_bound 7)))
    (fun (i, (pos, bit)) ->
      let msg = List.nth sample_messages i in
      let frame = Wire.encode msg in
      let payload = Bytes.of_string (String.sub frame 4 (String.length frame - 4)) in
      let pos = pos mod Bytes.length payload in
      Bytes.set payload pos
        (Char.chr (Char.code (Bytes.get payload pos) lxor (1 lsl bit)));
      match Wire.decode_payload (Bytes.to_string payload) with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Wire v5 <-> v4 interop

   The v5 context fields ride as trailing optional strings, so a v4
   peer's bytes are, by construction, exactly the v5 encoding with the
   context stripped.  Pin that construction: stripping the context
   yields a strict prefix of the v5 frame, the v5 decoder reads those
   v4 bytes back as a context-free spec, and contexts round-trip when
   present. *)

let interop_spec_gen =
  (* one shared pool: the generator varies only the v5-relevant fields *)
  let base = spec_of_seed ~classes:6 1 in
  QCheck.Gen.(
    map2
      (fun frontend ctx -> { base with Wire.frontend; trace_ctx = ctx })
      (oneofl [ "jvm"; "dimacs"; "fjtree" ])
      (opt
         (map2
            (fun a b ->
              {
                Lbr_obs.Trace.Context.trace_id = Printf.sprintf "%016Lx" (Int64.of_int a);
                parent_span = Printf.sprintf "%016Lx" (Int64.of_int b);
              })
            int int)))

let payload_of msg =
  let frame = Wire.encode msg in
  String.sub frame 4 (String.length frame - 4)

let prop_wire_v4_bytes_decode_identically =
  QCheck.Test.make ~count:100 ~name:"v4 frames are the ctx-stripped v5 frames"
    (QCheck.make interop_spec_gen)
    (fun spec ->
      let v4_spec = { spec with Wire.trace_ctx = None } in
      let v4 = payload_of (Wire.Submit v4_spec) in
      let v5 = payload_of (Wire.Submit spec) in
      String.length v4 <= String.length v5
      && String.sub v5 0 (String.length v4) = v4
      && Wire.decode_payload v4 = Ok (Wire.Submit v4_spec))

let prop_wire_ctx_roundtrip =
  QCheck.Test.make ~count:100 ~name:"v5 contexts round-trip on every ctx'd frame"
    (QCheck.make interop_spec_gen)
    (fun spec ->
      [
        Wire.Submit spec;
        Wire.Submit_seeded { spec; seeds = [ (String.make 32 'a', true) ] };
        Wire.Verdict
          { job_id = "job-1"; key = String.make 32 'k'; ok = true; ctx = spec.Wire.trace_ctx };
      ]
      |> List.for_all (fun msg -> Wire.decode_payload (payload_of msg) = Ok msg))

let test_spec_string_roundtrip () =
  let spec = spec_of_seed ~classes:10 ~priority:Wire.High 3 in
  match Wire.spec_of_string (Wire.spec_to_string spec) with
  | Ok spec' -> Alcotest.(check bool) "spec roundtrip" true (spec = spec')
  | Error m -> Alcotest.failf "spec does not roundtrip: %s" m

(* ------------------------------------------------------------------ *)
(* Wire over TCP — the framing must behave identically over a loopback
   TCP stream: same roundtrips, same total rejection of truncated and
   bit-flipped frames.  (TCP can fragment writes at different boundaries
   than a Unix socketpair, which is exactly what these exercise.) *)

let tcp_pair () =
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 1;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let a = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect a (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let b, _ = Unix.accept srv in
  Unix.close srv;
  (a, b)

let test_wire_tcp_roundtrip () =
  let a, b = tcp_pair () in
  List.iter
    (fun msg ->
      Wire.write_message a msg;
      match Wire.read_message b with
      | Ok decoded -> check_message_equal "tcp roundtrip" msg decoded
      | Error `Closed -> Alcotest.fail "unexpected close"
      | Error (`Malformed m) -> Alcotest.failf "malformed over tcp: %s" m)
    sample_messages;
  Unix.close a;
  (match Wire.read_message b with
  | Error `Closed -> ()
  | _ -> Alcotest.fail "expected Closed after tcp peer shutdown");
  Unix.close b

let prop_wire_tcp_truncation_rejected =
  QCheck.Test.make ~count:100
    ~name:"tcp: truncated frames never decode to a message"
    QCheck.(pair (int_bound (List.length sample_messages - 1)) (int_bound 1000))
    (fun (i, cut) ->
      let msg = List.nth sample_messages i in
      let frame = Wire.encode msg in
      (* keep a strict prefix of the whole frame (prefix included), then
         hang up — the reader must report Closed or Malformed, never Ok *)
      let keep = cut * (String.length frame - 1) / 1000 in
      let a, b = tcp_pair () in
      ignore (Unix.write_substring a frame 0 keep : int);
      Unix.close a;
      let verdict =
        match Wire.read_message b with Ok _ -> false | Error _ -> true
      in
      Unix.close b;
      verdict)

let prop_wire_tcp_bitflip_never_raises =
  QCheck.Test.make ~count:100 ~name:"tcp: bit-flipped frames never raise"
    QCheck.(pair (int_bound (List.length sample_messages - 1)) (pair small_nat (int_bound 7)))
    (fun (i, (pos, bit)) ->
      let msg = List.nth sample_messages i in
      let frame = Bytes.of_string (Wire.encode msg) in
      let pos = pos mod Bytes.length frame in
      Bytes.set frame pos
        (Char.chr (Char.code (Bytes.get frame pos) lxor (1 lsl bit)));
      let a, b = tcp_pair () in
      ignore (Unix.write a frame 0 (Bytes.length frame) : int);
      (* close so a flipped (larger) length prefix hits EOF, not a hang *)
      Unix.close a;
      let verdict =
        match Wire.read_message b with Ok _ | Error _ -> true
      in
      Unix.close b;
      verdict)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)

let test_journal_record_and_replay () =
  let j = Journal.open_dir (fresh_dir "journal") in
  Journal.record_job j ~id:"job-000001" ~spec:"SPEC BYTES";
  Journal.append_pred j ~id:"job-000001" ~key:(String.make 32 'a') true;
  Journal.append_pred j ~id:"job-000001" ~key:(String.make 32 'b') false;
  Alcotest.(check (list (pair string string)))
    "pending sees the job"
    [ ("job-000001", "SPEC BYTES") ]
    (Journal.pending j);
  let table = Journal.replay j ~id:"job-000001" in
  Alcotest.(check (option bool)) "true entry" (Some true)
    (Hashtbl.find_opt table (String.make 32 'a'));
  Alcotest.(check (option bool)) "false entry" (Some false)
    (Hashtbl.find_opt table (String.make 32 'b'));
  Journal.mark_done j ~id:"job-000001";
  Alcotest.(check (list (pair string string))) "done job no longer pending" []
    (Journal.pending j);
  Alcotest.(check int) "max job number" 1 (Journal.max_job_number j);
  Journal.close j

let test_journal_tolerates_torn_line () =
  let dir = fresh_dir "torn" in
  let j = Journal.open_dir dir in
  Journal.record_job j ~id:"job-000007" ~spec:"S";
  Journal.append_pred j ~id:"job-000007" ~key:(String.make 32 '1') true;
  Journal.close j;
  (* simulate a crash mid-append: a torn trailing line *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644
      (Filename.concat (Filename.concat dir "job-000007") "preds.log")
  in
  output_string oc (String.make 10 '2');
  close_out oc;
  let j = Journal.open_dir dir in
  let table = Journal.replay j ~id:"job-000007" in
  Alcotest.(check int) "only the whole line survives" 1 (Hashtbl.length table);
  Alcotest.(check int) "max job number" 7 (Journal.max_job_number j);
  Journal.close j

let test_journal_v2_latency_retries () =
  let dir = fresh_dir "v2" in
  let j = Journal.open_dir dir in
  Journal.record_job j ~id:"job-000003" ~spec:"S";
  (* mixed vintages in one log: a v1 line (no latency) among v2 lines *)
  Journal.append_pred j ~id:"job-000003" ~key:(String.make 32 'a') true;
  Journal.append_pred j ~id:"job-000003" ~key:(String.make 32 'b') ~latency:0.25 ~retries:2
    false;
  Journal.append_pred j ~id:"job-000003" ~key:(String.make 32 'c') ~latency:1e-6 true;
  Journal.close j;
  let j = Journal.open_dir dir in
  let table = Journal.replay j ~id:"job-000003" in
  Alcotest.(check int) "all three vintages replay" 3 (Hashtbl.length table);
  Alcotest.(check (option bool)) "v2 verdict readable" (Some false)
    (Hashtbl.find_opt table (String.make 32 'b'));
  (match Journal.verdicts j ~id:"job-000003" with
  | [ a; b; c ] ->
      Alcotest.(check bool) "v1 line has no latency" true (a.Journal.v_latency = None);
      Alcotest.(check (option int)) "v1 line has no retries" None a.Journal.v_retries;
      (match b.Journal.v_latency with
      | Some l -> Alcotest.(check (float 1e-9)) "v2 latency survives (us precision)" 0.25 l
      | None -> Alcotest.fail "v2 line lost its latency");
      Alcotest.(check (option int)) "v2 retries survive" (Some 2) b.Journal.v_retries;
      (match c.Journal.v_latency with
      | Some l -> Alcotest.(check (float 1e-12)) "1us latency survives" 1e-6 l
      | None -> Alcotest.fail "v2 line lost its 1us latency");
      Alcotest.(check bool) "append order preserved" true (a.Journal.v_ok && c.Journal.v_ok)
  | vs -> Alcotest.failf "expected 3 verdicts, got %d" (List.length vs));
  Alcotest.(check (list string)) "jobs lists the journaled job" [ "job-000003" ]
    (Journal.jobs j);
  Journal.close j

let test_journal_rejects_unsafe_ids () =
  let j = Journal.open_dir (fresh_dir "ids") in
  Alcotest.check_raises "path escape" (Invalid_argument "Journal: unsafe job id ../evil")
    (fun () -> Journal.record_job j ~id:"../evil" ~spec:"S");
  Journal.close j

(* ------------------------------------------------------------------ *)
(* Scheduler (stub runners)                                            *)

let await_done sched id =
  match Scheduler.await sched id with
  | Scheduler.Done (stats, bytes) -> (stats, bytes)
  | Scheduler.Failed m -> Alcotest.failf "job failed: %s" m
  | Scheduler.Cancelled -> Alcotest.fail "job cancelled"
  | Scheduler.Queued | Scheduler.Running -> assert false

let trivial_stats =
  {
    Wire.ok = true;
    predicate_runs = 0;
    replayed_runs = 0;
    tool_executions = 0;
    oracle_retries = 0;
    oracle_crashes = 0;
    sim_time = 0.;
    wall_time = 0.;
    classes0 = 0;
    classes1 = 0;
    bytes0 = 0;
    bytes1 = 0;
  }

(* a runner that blocks until [gate] opens, then echoes the job id *)
let gated_runner gate started (ctx : Scheduler.runner_ctx) (_ : Wire.spec) =
  Atomic.incr started;
  while not (Atomic.get gate) do
    if ctx.should_stop () then raise Lbr_harness.Experiment.Cancelled;
    Thread.delay 0.002
  done;
  Ok (trivial_stats, ctx.job_id)

let tiny_spec = lazy (spec_of_seed ~classes:6 1)
let tiny_spec_high =
  lazy { (Lazy.force tiny_spec) with Wire.priority = Wire.High }

let test_scheduler_backpressure () =
  let gate = Atomic.make false in
  let started = Atomic.make 0 in
  let sched =
    Scheduler.create ~runner:(gated_runner gate started) ~jobs:1 ~queue_depth:2 ()
  in
  let submit () = Scheduler.submit sched (Lazy.force tiny_spec) in
  let submit_ok () =
    match submit () with
    | Ok id -> id
    | Error _ -> Alcotest.fail "early submission rejected"
  in
  (* one job occupies the worker... *)
  let first = submit_ok () in
  while Atomic.get started < 1 do
    Thread.delay 0.002
  done;
  (* ...then two fill the queue *)
  let ids = [ first; submit_ok (); submit_ok () ] in
  (match submit () with
  | Error (`Queue_full retry_after) ->
      Alcotest.(check bool) "retry_after positive" true (retry_after > 0.)
  | Ok _ -> Alcotest.fail "queue-full submission accepted"
  | Error `Draining -> Alcotest.fail "not draining");
  Atomic.set gate true;
  List.iter
    (fun id ->
      let _, echoed = await_done sched id in
      Alcotest.(check string) "runner saw its own id" id echoed)
    ids;
  (* queue drained: admissions open again *)
  (match submit () with
  | Ok id -> ignore (await_done sched id)
  | Error _ -> Alcotest.fail "post-drain submission rejected");
  Scheduler.shutdown sched

let test_scheduler_cancel_running () =
  let gate = Atomic.make false in
  let started = Atomic.make 0 in
  let sched =
    Scheduler.create ~runner:(gated_runner gate started) ~jobs:1 ~queue_depth:4 ()
  in
  let id =
    match Scheduler.submit sched (Lazy.force tiny_spec) with
    | Ok id -> id
    | Error _ -> Alcotest.fail "submission rejected"
  in
  while Atomic.get started < 1 do
    Thread.delay 0.002
  done;
  Alcotest.(check bool) "cancel finds the running job" true (Scheduler.cancel sched id);
  (match Scheduler.await sched id with
  | Scheduler.Cancelled -> ()
  | _ -> Alcotest.fail "expected Cancelled");
  Alcotest.(check bool) "second cancel is a no-op" false (Scheduler.cancel sched id);
  Scheduler.shutdown sched

let test_scheduler_cancel_queued_never_runs () =
  let gate = Atomic.make false in
  let started = Atomic.make 0 in
  let sched =
    Scheduler.create ~runner:(gated_runner gate started) ~jobs:1 ~queue_depth:4 ()
  in
  let submit () =
    match Scheduler.submit sched (Lazy.force tiny_spec) with
    | Ok id -> id
    | Error _ -> Alcotest.fail "submission rejected"
  in
  let first = submit () in
  while Atomic.get started < 1 do
    Thread.delay 0.002
  done;
  let queued = submit () in
  Alcotest.(check bool) "cancel finds the queued job" true (Scheduler.cancel sched queued);
  Atomic.set gate true;
  (match Scheduler.await sched queued with
  | Scheduler.Cancelled -> ()
  | _ -> Alcotest.fail "expected Cancelled");
  ignore (await_done sched first);
  Alcotest.(check int) "cancelled queued job never started" 1 (Atomic.get started);
  Scheduler.shutdown sched

let test_scheduler_priority_order () =
  let gate = Atomic.make false in
  let order_mutex = Mutex.create () in
  let order = ref [] in
  let runner (ctx : Scheduler.runner_ctx) (_ : Wire.spec) =
    while not (Atomic.get gate) do
      Thread.delay 0.002
    done;
    Mutex.lock order_mutex;
    order := ctx.job_id :: !order;
    Mutex.unlock order_mutex;
    Ok (trivial_stats, ctx.job_id)
  in
  let sched = Scheduler.create ~runner ~jobs:1 ~queue_depth:8 () in
  let submit spec =
    match Scheduler.submit sched spec with
    | Ok id -> id
    | Error _ -> Alcotest.fail "submission rejected"
  in
  (* the blocker occupies the single worker; normal then high wait *)
  let blocker = submit (Lazy.force tiny_spec) in
  while Scheduler.running sched < 1 do
    Thread.delay 0.002
  done;
  let normal = submit (Lazy.force tiny_spec) in
  let high = submit (Lazy.force tiny_spec_high) in
  Atomic.set gate true;
  List.iter (fun id -> ignore (await_done sched id)) [ blocker; normal; high ];
  Alcotest.(check (list string))
    "high priority overtakes earlier normal submission"
    [ blocker; high; normal ] (List.rev !order);
  Scheduler.shutdown sched

let test_scheduler_drain_rejects () =
  let sched =
    Scheduler.create
      ~runner:(fun (ctx : Scheduler.runner_ctx) _ -> Ok (trivial_stats, ctx.job_id))
      ~jobs:1 ~queue_depth:2 ()
  in
  (match Scheduler.submit sched (Lazy.force tiny_spec) with
  | Ok id -> ignore (await_done sched id)
  | Error _ -> Alcotest.fail "submission rejected");
  Scheduler.drain sched;
  (match Scheduler.submit sched (Lazy.force tiny_spec) with
  | Error `Draining -> ()
  | _ -> Alcotest.fail "draining scheduler accepted a job");
  Scheduler.shutdown sched

let test_scheduler_events_in_order () =
  let events_mutex = Mutex.create () in
  let events = ref [] in
  let runner (ctx : Scheduler.runner_ctx) (_ : Wire.spec) =
    ctx.progress 1.0 10 100;
    ctx.progress 2.0 5 50;
    Ok (trivial_stats, ctx.job_id)
  in
  let sched = Scheduler.create ~runner ~jobs:1 ~queue_depth:2 () in
  let on_event _id ev =
    Mutex.lock events_mutex;
    events := ev :: !events;
    Mutex.unlock events_mutex
  in
  (match Scheduler.submit sched ~on_event (Lazy.force tiny_spec) with
  | Ok id -> ignore (await_done sched id)
  | Error _ -> Alcotest.fail "submission rejected");
  (* the terminal event is delivered before await returns *)
  (match List.rev !events with
  | [ Scheduler.Started;
      Scheduler.Progress { sim_time = 1.0; classes = 10; bytes = 100 };
      Scheduler.Progress { sim_time = 2.0; classes = 5; bytes = 50 };
      Scheduler.Finished (Scheduler.Done _) ] ->
      ()
  | evs -> Alcotest.failf "unexpected event sequence (%d events)" (List.length evs));
  Scheduler.shutdown sched

(* ------------------------------------------------------------------ *)
(* Journal replay with the real runner                                 *)

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_journal_replay_resumes_with_fewer_executions () =
  (* Cold run, journaled. *)
  let dir1 = fresh_dir "cold" in
  let j1 = Journal.open_dir dir1 in
  let sched1 =
    Scheduler.create ~runner:Runner.reduce ~jobs:1 ~queue_depth:2 ~journal:j1 ()
  in
  let spec = spec_of_seed ~classes:18 11 in
  let id1 =
    match Scheduler.submit sched1 spec with
    | Ok id -> id
    | Error _ -> Alcotest.fail "cold submission rejected"
  in
  let cold_stats, cold_bytes = await_done sched1 id1 in
  Scheduler.shutdown sched1;
  Journal.close j1;
  Alcotest.(check int) "cold run replays nothing" 0 cold_stats.Wire.replayed_runs;
  Alcotest.(check bool) "cold run paid executions" true (cold_stats.Wire.tool_executions > 5);
  (* Fabricate the kill -9 state: same spec, a strict prefix of the
     predicate log, no terminal marker. *)
  let cold_log = read_lines (Filename.concat (Filename.concat dir1 id1) "preds.log") in
  let prefix_len = List.length cold_log / 2 in
  Alcotest.(check bool) "enough log to truncate" true (prefix_len >= 1);
  let dir2 = fresh_dir "resume" in
  let j2 = Journal.open_dir dir2 in
  Journal.record_job j2 ~id:id1 ~spec:(Wire.spec_to_string spec);
  List.iteri
    (fun i line ->
      if i < prefix_len then
        Journal.append_pred j2 ~id:id1
          ~key:(String.sub line 0 32)
          (line.[33] = '1'))
    cold_log;
  (* Restart: recover must re-admit exactly this job and finish it with
     strictly fewer tool executions, same everything else. *)
  let sched2 =
    Scheduler.create ~runner:Runner.reduce ~jobs:1 ~queue_depth:2 ~journal:j2 ()
  in
  Alcotest.(check int) "one job recovered" 1 (Scheduler.recover sched2);
  let warm_stats, warm_bytes = await_done sched2 id1 in
  Scheduler.shutdown sched2;
  Journal.close j2;
  Alcotest.(check string) "resumed pool is byte-identical" cold_bytes warm_bytes;
  Alcotest.(check int) "same predicate runs" cold_stats.Wire.predicate_runs
    warm_stats.Wire.predicate_runs;
  Alcotest.(check (float 1e-9)) "same simulated time" cold_stats.Wire.sim_time
    warm_stats.Wire.sim_time;
  Alcotest.(check int) "replayed exactly the journaled prefix" prefix_len
    warm_stats.Wire.replayed_runs;
  Alcotest.(check bool) "strictly fewer tool executions" true
    (warm_stats.Wire.tool_executions < cold_stats.Wire.tool_executions);
  Alcotest.(check bool) "resumed run reaches done" true
    (Sys.file_exists (Filename.concat (Filename.concat dir2 id1) "done"))

(* run_with with a pass-through evaluate hook must change nothing *)
let test_hooks_passthrough_identical () =
  let _, reference = reference_run ~classes:16 21 in
  let pool =
    match Lbr_jvm.Serialize.of_bytes (pool_bytes_of_seed ~classes:16 21) with
    | Ok p -> p
    | Error m -> Alcotest.failf "pool: %s" m
  in
  let tool =
    List.find (fun t -> Lbr_decompiler.Tool.is_buggy_on t pool) Lbr_decompiler.Tool.all
  in
  let instance =
    {
      Lbr_harness.Corpus.instance_id = "hooked";
      benchmark = { Lbr_harness.Corpus.bench_id = "hooked"; seed = 21; pool };
      tool;
      baseline_errors = Lbr_decompiler.Tool.errors tool pool;
    }
  in
  let keys = ref 0 in
  let hooks =
    {
      Lbr_harness.Experiment.default_hooks with
      evaluate =
        Some
          (fun ~key thunk ->
            Alcotest.(check int) "digest key length" 32 (String.length key);
            incr keys;
            Lbr_harness.Experiment.Fresh (thunk ()));
    }
  in
  let outcome, final =
    Lbr_harness.Experiment.run_with ~hooks Lbr_harness.Experiment.Gbr instance
  in
  Alcotest.(check string) "hooked run is byte-identical" reference
    (Lbr_jvm.Serialize.to_bytes final);
  Alcotest.(check int) "every predicate run passed through the hook" outcome.predicate_runs
    !keys;
  Alcotest.(check int) "pass-through replays nothing" 0 outcome.replayed_runs

(* ------------------------------------------------------------------ *)
(* Socket server end to end                                            *)

let with_server ?(jobs = 2) ?(queue_depth = 8) ?journal_dir label f =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lbr-test-%d-%s.sock" (Unix.getpid ()) label)
  in
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let server =
    Server.start { Server.listen = Addr.Unix_path socket_path; jobs; queue_depth; journal_dir }
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f socket_path server)

let test_server_submit_matches_in_process () =
  with_server "match" (fun socket _server ->
      let seed = 21 in
      let ref_outcome, ref_bytes = reference_run ~classes:16 seed in
      match Client.connect socket with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok client ->
          let progress = ref 0 in
          let result =
            Client.submit client
              ~on_progress:(fun _ -> incr progress)
              (spec_of_seed ~classes:16 seed)
          in
          Client.close client;
          (match result with
          | Error m -> Alcotest.failf "submit: %s" m
          | Ok (_, stats, bytes) ->
              Alcotest.(check string) "socket result is byte-identical to Experiment.run"
                ref_bytes bytes;
              Alcotest.(check int) "same predicate runs" ref_outcome.predicate_runs
                stats.Wire.predicate_runs;
              Alcotest.(check (float 1e-9)) "same simulated time" ref_outcome.sim_time
                stats.Wire.sim_time;
              Alcotest.(check int) "progress streamed per improvement"
                (List.length ref_outcome.timeline)
                !progress))

let test_server_three_concurrent_clients_jobs4 () =
  with_server ~jobs:4 "concurrent" (fun socket _server ->
      let seeds = [ 21; 22; 23 ] in
      let references = List.map (fun seed -> reference_run ~classes:16 seed) seeds in
      let results = Array.make (List.length seeds) (Error "not run") in
      let threads =
        List.mapi
          (fun i seed ->
            Thread.create
              (fun () ->
                match Client.connect socket with
                | Error m -> results.(i) <- Error ("connect: " ^ m)
                | Ok client ->
                    results.(i) <- Client.submit client (spec_of_seed ~classes:16 seed);
                    Client.close client)
              ())
          seeds
      in
      List.iter Thread.join threads;
      List.iteri
        (fun i (ref_outcome, ref_bytes) ->
          match results.(i) with
          | Error m -> Alcotest.failf "client %d: %s" i m
          | Ok (_, stats, bytes) ->
              Alcotest.(check string)
                (Printf.sprintf "client %d byte-identical" i)
                ref_bytes bytes;
              Alcotest.(check int)
                (Printf.sprintf "client %d predicate runs" i)
                ref_outcome.Lbr_harness.Experiment.predicate_runs stats.Wire.predicate_runs)
        references)

(* The acceptance scenario for `lbr-reduce top': three jobs submitted to a
   jobs=1 daemon, a dedicated introspection connection polling Stats while
   they are in flight.  At the high-water mark one job runs and two wait;
   the running job's best-so-far is mirrored from its progress stream.
   The jobs must be big enough that all three are in flight at once for
   several poll intervals — small pools reduce too fast to observe. *)
let test_server_top_stats () =
  with_server ~jobs:1 "topstats" (fun socket _server ->
      let seeds = [ 21; 22; 23 ] in
      let results = Array.make (List.length seeds) (Error "not run") in
      let threads =
        List.mapi
          (fun i seed ->
            Thread.create
              (fun () ->
                match Client.connect socket with
                | Error m -> results.(i) <- Error ("connect: " ^ m)
                | Ok client ->
                    results.(i) <- Client.submit client (spec_of_seed ~classes:64 seed);
                    Client.close client)
              ())
          seeds
      in
      (match Client.connect socket with
      | Error m -> Alcotest.failf "stats connect: %s" m
      | Ok stats_client ->
          Alcotest.(check int) "current protocol negotiated" Wire.protocol_version
            (Client.negotiated_version stats_client);
          let saw_three = ref false and saw_best = ref false in
          let deadline = Unix.gettimeofday () +. 30. in
          while (not (!saw_three && !saw_best)) && Unix.gettimeofday () < deadline do
            (match Client.stats stats_client with
            | Error m -> Alcotest.failf "stats: %s" m
            | Ok s ->
                if s.Wire.queued_jobs = 2 && s.Wire.running_jobs = 1 then begin
                  saw_three := true;
                  Alcotest.(check int) "job_stats lists all three" 3
                    (List.length s.Wire.job_stats);
                  Alcotest.(check int) "exactly one marked running" 1
                    (List.length
                       (List.filter (fun j -> j.Wire.js_running) s.Wire.job_stats))
                end;
                if
                  List.exists
                    (fun j -> j.Wire.js_running && j.Wire.js_best <> None)
                    s.Wire.job_stats
                then saw_best := true);
            Thread.delay 0.002
          done;
          Alcotest.(check bool) "saw 1 running + 2 queued" true !saw_three;
          Alcotest.(check bool) "saw a running job's best-so-far" true !saw_best;
          List.iter Thread.join threads;
          (* The result reply races the scheduler's own bookkeeping: a
             client can hold its [Job_result] a beat before the job
             leaves the running table, so poll the snapshot to
             quiescence instead of trusting the first one. *)
          let final = ref None in
          let deadline = Unix.gettimeofday () +. 30. in
          while !final = None && Unix.gettimeofday () < deadline do
            (match Client.stats stats_client with
            | Error m -> Alcotest.failf "final stats: %s" m
            | Ok s ->
                if s.Wire.queued_jobs + s.Wire.running_jobs = 0 then
                  final := Some s);
            if !final = None then Thread.delay 0.002
          done;
          (match !final with
          | None -> Alcotest.fail "jobs still in flight after results delivered"
          | Some s ->
              Alcotest.(check bool) "oracle queries counted" true (s.Wire.oracle_queries > 0);
              Alcotest.(check bool) "memo hit rate well-formed" true
                (s.Wire.oracle_memo_hits >= 0
                && s.Wire.oracle_memo_hits <= s.Wire.oracle_queries);
              Alcotest.(check bool) "prometheus snapshot present" true
                (String.length s.Wire.metrics_text > 0);
              Alcotest.(check bool) "uptime positive" true (s.Wire.uptime > 0.));
          Client.close stats_client);
      Array.iter
        (function Error m -> Alcotest.failf "job: %s" m | Ok _ -> ())
        results)

let test_server_rejects_bad_hello () =
  with_server "badhello" (fun socket _server ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      (* a Submit before Hello is a protocol error *)
      Wire.write_message fd (Wire.Cancel "job-000001");
      (match Wire.read_message fd with
      | Ok (Wire.Protocol_error _) -> ()
      | _ -> Alcotest.fail "expected Protocol_error");
      (* and the server closes the connection *)
      (match Wire.read_message fd with
      | Error `Closed -> ()
      | _ -> Alcotest.fail "expected close after protocol error");
      Unix.close fd)

let test_server_rejects_malformed_frame () =
  with_server "malformed" (fun socket _server ->
      match Client.connect socket with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok client ->
          (* handshake done; now inject garbage through a raw fd *)
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          Wire.write_message fd (Wire.Hello Wire.protocol_version);
          (match Wire.read_message fd with
          | Ok (Wire.Hello_ok v) ->
              Alcotest.(check int) "negotiated version" Wire.protocol_version v
          | _ -> Alcotest.fail "handshake failed");
          let garbage = "\x00\x00\x00\x03\xfe\xfe\xfe" in
          ignore (Unix.write_substring fd garbage 0 (String.length garbage) : int);
          (match Wire.read_message fd with
          | Ok (Wire.Protocol_error _) -> ()
          | _ -> Alcotest.fail "expected Protocol_error for unknown kind");
          Unix.close fd;
          Client.close client)

(* A v2 client (pre-cluster vintage) against a v3 daemon: handshake
   negotiates down to 2, the submission runs, the result is byte-identical
   — and no v3 [Verdict] frames leak onto the connection. *)
let test_server_v2_client_interop () =
  with_server "v2compat" (fun socket _server ->
      let seed = 21 in
      let _, ref_bytes = reference_run ~classes:16 seed in
      match Client.connect ~version:2 socket with
      | Error m -> Alcotest.failf "v2 connect: %s" m
      | Ok client ->
          Alcotest.(check int) "negotiated down to 2" 2
            (Client.negotiated_version client);
          let verdicts = ref 0 in
          let result =
            Client.submit client
              ~on_verdict:(fun ~key:_ ~ok:_ -> incr verdicts)
              (spec_of_seed ~classes:16 seed)
          in
          Client.close client;
          (match result with
          | Error m -> Alcotest.failf "v2 submit: %s" m
          | Ok (_, _, bytes) ->
              Alcotest.(check string) "v2 result byte-identical" ref_bytes bytes;
              Alcotest.(check int) "no Verdict frames on a v2 connection" 0
                !verdicts))

(* The flip side: a v3 connection streams one Verdict frame per fresh
   predicate evaluation, in executed order. *)
let test_server_v3_verdict_stream () =
  with_server "v3verdicts" (fun socket _server ->
      let seed = 21 in
      match Client.connect socket with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok client ->
          let verdicts = ref 0 in
          let result =
            Client.submit client
              ~on_verdict:(fun ~key ~ok:_ ->
                Alcotest.(check int) "verdict key is a 32-hex digest" 32
                  (String.length key);
                incr verdicts)
              (spec_of_seed ~classes:16 seed)
          in
          Client.close client;
          (match result with
          | Error m -> Alcotest.failf "submit: %s" m
          | Ok (_, stats, _) ->
              Alcotest.(check int) "one Verdict per fresh evaluation"
                stats.Wire.predicate_runs !verdicts;
              Alcotest.(check bool) "evaluations happened" true (!verdicts > 0)))

(* Submit_seeded is v3 vocabulary; on a v2 connection it is a protocol
   error, not a silently mis-parsed frame. *)
let test_server_seeded_submit_rejected_on_v2 () =
  with_server "seededv2" (fun socket _server ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Wire.write_message fd (Wire.Hello 2);
      (match Wire.read_message fd with
      | Ok (Wire.Hello_ok 2) -> ()
      | _ -> Alcotest.fail "expected Hello_ok 2");
      Wire.write_message fd
        (Wire.Submit_seeded
           { spec = spec_of_seed ~classes:6 1; seeds = [ (String.make 32 'a', true) ] });
      (match Wire.read_message fd with
      | Ok (Wire.Protocol_error _) -> ()
      | _ -> Alcotest.fail "expected Protocol_error for Submit_seeded on v2");
      Unix.close fd)

(* A v5 connection can pull the daemon's span rings and metric registry;
   the server and the test share a process, so enabling tracing here
   makes the server's own job spans visible in the dump. *)
let test_server_observability_dumps () =
  with_server "obsdumps" (fun socket _server ->
      Lbr_obs.Trace.start ();
      Fun.protect
        ~finally:(fun () -> Lbr_obs.Trace.stop ())
        (fun () ->
          match Client.connect socket with
          | Error m -> Alcotest.failf "connect: %s" m
          | Ok client ->
              Alcotest.(check int) "negotiated v5" 5 (Client.negotiated_version client);
              (match Client.submit client (spec_of_seed ~classes:16 21) with
              | Error m -> Alcotest.failf "submit: %s" m
              | Ok _ -> ());
              (match Client.trace_dump client with
              | Error m -> Alcotest.failf "trace_dump: %s" m
              | Ok d ->
                  Alcotest.(check bool) "node label present" true
                    (String.length d.Client.td_node > 0);
                  Alcotest.(check bool) "epoch is set" true (d.Client.td_epoch > 0.);
                  Alcotest.(check bool) "job spans recorded" true (d.Client.td_events <> []));
              (match Client.metrics_dump client with
              | Error m -> Alcotest.failf "metrics_dump: %s" m
              | Ok (node, dump) ->
                  Alcotest.(check bool) "node label present" true (String.length node > 0);
                  Alcotest.(check bool) "registry snapshot non-empty" true (dump <> []));
              Client.close client))

(* Dump requests are v5 vocabulary; a v4 peer gets a protocol error, not
   a mis-parsed frame. *)
let test_server_dumps_rejected_on_v4 () =
  with_server "dumpv4" (fun socket _server ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Wire.write_message fd (Wire.Hello 4);
      (match Wire.read_message fd with
      | Ok (Wire.Hello_ok 4) -> ()
      | _ -> Alcotest.fail "expected Hello_ok 4");
      Wire.write_message fd Wire.Trace_dump_request;
      (match Wire.read_message fd with
      | Ok (Wire.Protocol_error _) -> ()
      | _ -> Alcotest.fail "expected Protocol_error for Trace_dump_request on v4");
      Unix.close fd)

let test_server_cancel_over_socket () =
  (* queue_depth 1 and jobs 1: park a long job, cancel it over the wire *)
  with_server ~jobs:1 "cancel" (fun socket server ->
      ignore server;
      match Client.connect socket with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok client -> (
          (* a larger pool so the job is still running when Cancel lands *)
          let submit_result = ref (Error "not run") in
          let th =
            Thread.create
              (fun () ->
                submit_result := Client.submit client (spec_of_seed ~classes:120 31))
              ()
          in
          (* separate connection for control while the first blocks *)
          match Client.connect socket with
          | Error m -> Alcotest.failf "control connect: %s" m
          | Ok control ->
              (* the daemon assigns job ids sequentially from 1 *)
              let rec cancel_until_found tries =
                match Client.cancel control "job-000001" with
                | Ok true -> ()
                | Ok false when tries > 0 ->
                    Thread.delay 0.01;
                    cancel_until_found (tries - 1)
                | Ok false -> Alcotest.fail "job never became cancellable"
                | Error m -> Alcotest.failf "cancel: %s" m
              in
              cancel_until_found 200;
              Thread.join th;
              Client.close control;
              Client.close client;
              (match !submit_result with
              | Error m ->
                  let contains_cancelled =
                    let n = String.length m and p = "cancelled" in
                    let pl = String.length p in
                    let rec go i = i + pl <= n && (String.sub m i pl = p || go (i + 1)) in
                    go 0
                  in
                  Alcotest.(check bool) "failure mentions cancellation" true
                    contains_cancelled
              | Ok _ -> Alcotest.fail "cancelled job returned a result")))

let test_server_draining_rejects_submissions () =
  with_server "drain" (fun socket server ->
      match Client.connect socket with
      | Error m -> Alcotest.failf "connect: %s" m
      | Ok client ->
          Scheduler.drain (Server.scheduler server);
          (match Client.submit client (spec_of_seed ~classes:6 1) with
          | Error m ->
              Alcotest.(check bool) "rejection mentions draining" true
                (String.length m > 0)
          | Ok _ -> Alcotest.fail "draining server accepted a job");
          Client.close client)

(* ------------------------------------------------------------------ *)
(* Shutdown helper                                                     *)

let test_shutdown_drain_runs_once_in_order () =
  let s = Shutdown.install () in
  Alcotest.(check bool) "not requested initially" false (Shutdown.requested s);
  let log = ref [] in
  Shutdown.on_drain s (fun () -> log := "first" :: !log);
  Shutdown.on_drain s (fun () -> failwith "a failing action must not stop the rest");
  Shutdown.on_drain s (fun () -> log := "second" :: !log);
  Shutdown.request s;
  Alcotest.(check bool) "requested after request" true (Shutdown.requested s);
  Shutdown.run_drain s;
  Shutdown.run_drain s;
  Alcotest.(check (list string)) "actions ran once, in order" [ "first"; "second" ]
    (List.rev !log)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "message roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "socket roundtrip + clean close" `Quick test_wire_socket_roundtrip;
          Alcotest.test_case "oversized and truncated frames" `Quick
            test_wire_rejects_oversized_and_truncated;
          Alcotest.test_case "empty frame" `Quick test_wire_empty_frame_is_malformed;
          Alcotest.test_case "spec string roundtrip" `Quick test_spec_string_roundtrip;
          Alcotest.test_case "tcp roundtrip + clean close" `Quick test_wire_tcp_roundtrip;
        ] );
      qsuite "wire-prop"
        [ prop_wire_decode_never_raises; prop_wire_truncation_rejected;
          prop_wire_bitflip_never_raises; prop_wire_tcp_truncation_rejected;
          prop_wire_tcp_bitflip_never_raises ];
      qsuite "wire-v5-interop"
        [ prop_wire_v4_bytes_decode_identically; prop_wire_ctx_roundtrip ];
      ( "journal",
        [
          Alcotest.test_case "record, replay, terminal markers" `Quick
            test_journal_record_and_replay;
          Alcotest.test_case "torn trailing line is skipped" `Quick
            test_journal_tolerates_torn_line;
          Alcotest.test_case "v2 verdict lines: latency + retries" `Quick
            test_journal_v2_latency_retries;
          Alcotest.test_case "unsafe job ids rejected" `Quick test_journal_rejects_unsafe_ids;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "queue-full backpressure" `Quick test_scheduler_backpressure;
          Alcotest.test_case "cancel a running job" `Quick test_scheduler_cancel_running;
          Alcotest.test_case "cancel a queued job before it runs" `Quick
            test_scheduler_cancel_queued_never_runs;
          Alcotest.test_case "high priority dispatches first" `Quick
            test_scheduler_priority_order;
          Alcotest.test_case "draining rejects" `Quick test_scheduler_drain_rejects;
          Alcotest.test_case "events stream in order" `Quick test_scheduler_events_in_order;
        ] );
      ( "replay",
        [
          Alcotest.test_case "resume replays journal, fewer executions" `Slow
            test_journal_replay_resumes_with_fewer_executions;
          Alcotest.test_case "pass-through hooks change nothing" `Quick
            test_hooks_passthrough_identical;
        ] );
      ( "socket",
        [
          Alcotest.test_case "submit matches in-process run" `Slow
            test_server_submit_matches_in_process;
          Alcotest.test_case "3 concurrent clients, jobs=4, byte-identical" `Slow
            test_server_three_concurrent_clients_jobs4;
          Alcotest.test_case "live stats: queue depth, best-so-far, memo rate" `Slow
            test_server_top_stats;
          Alcotest.test_case "hello required" `Quick test_server_rejects_bad_hello;
          Alcotest.test_case "malformed frame gets Protocol_error" `Quick
            test_server_rejects_malformed_frame;
          Alcotest.test_case "v2 client interoperates with v3 daemon" `Slow
            test_server_v2_client_interop;
          Alcotest.test_case "v3 connection streams Verdict frames" `Slow
            test_server_v3_verdict_stream;
          Alcotest.test_case "Submit_seeded rejected on v2" `Quick
            test_server_seeded_submit_rejected_on_v2;
          Alcotest.test_case "v5 trace + metrics dumps over the socket" `Slow
            test_server_observability_dumps;
          Alcotest.test_case "dump requests rejected on v4" `Quick
            test_server_dumps_rejected_on_v4;
          Alcotest.test_case "cancel over the socket" `Slow test_server_cancel_over_socket;
          Alcotest.test_case "draining rejects submissions" `Quick
            test_server_draining_rejects_submissions;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "drain actions run once, in order" `Quick
            test_shutdown_drain_runs_once_in_order;
        ] );
    ]
