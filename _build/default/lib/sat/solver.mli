(** A DPLL satisfiability solver.

    This is the general-purpose fallback used when the polynomial MSA engine
    meets a formula outside the fragment produced by the dependency models
    (e.g. purely negative clauses).  Branching tries [false] first, which
    biases found models towards small true-sets. *)

open Lbr_logic

val solve : Cnf.t -> Assignment.t option
(** A satisfying assignment (as the set of true variables over the formula's
    variables; unmentioned variables are false), or [None] if unsatisfiable. *)

val satisfiable : Cnf.t -> bool

val solve_with : Cnf.t -> required:Assignment.t -> Assignment.t option
(** A model that sets all of [required] to true, or [None]. *)

val minimize :
  Cnf.t -> order:Order.t -> required:Assignment.t -> model:Assignment.t -> Assignment.t
(** Greedy minimal-satisfying-assignment extraction: walk the model's true
    variables in reverse [<] order and drop each variable whose removal keeps
    the formula satisfiable (re-solving under the remaining commitments).
    Variables in [required] are never dropped.  Exponential in
    the worst case; used only on the fallback path. *)
