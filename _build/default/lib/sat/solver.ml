open Lbr_logic

(* Find a unit clause, returning its literal as (var, value). *)
let find_unit clauses =
  List.find_map
    (fun (c : Clause.t) ->
      match Array.length c.neg, Array.length c.pos with
      | 0, 1 -> Some (c.pos.(0), true)
      | 1, 0 -> Some (c.neg.(0), false)
      | _, _ -> None)
    clauses

let rec dpll cnf trues =
  if Cnf.is_unsat cnf then None
  else
    match Cnf.clauses cnf with
    | [] -> Some trues
    | clauses -> (
        match find_unit clauses with
        | Some (v, true) ->
            dpll (Cnf.condition_true cnf (Assignment.singleton v)) (Assignment.add v trues)
        | Some (v, false) -> dpll (Cnf.condition_false cnf (Assignment.singleton v)) trues
        | None ->
            (* Branch on the first variable of the first clause, false first
               to bias towards small models. *)
            let v =
              match clauses with
              | (c : Clause.t) :: _ ->
                  if Array.length c.neg > 0 then c.neg.(0) else c.pos.(0)
              | [] -> assert false
            in
            let falsy = dpll (Cnf.condition_false cnf (Assignment.singleton v)) trues in
            (match falsy with
            | Some _ as result -> result
            | None ->
                dpll (Cnf.condition_true cnf (Assignment.singleton v)) (Assignment.add v trues)))

let solve cnf = dpll cnf Assignment.empty

let satisfiable cnf = Option.is_some (solve cnf)

let solve_with cnf ~required =
  let conditioned = Cnf.condition_true cnf required in
  Option.map (Assignment.union required) (dpll conditioned Assignment.empty)

let minimize cnf ~order ~required ~model =
  assert (Cnf.holds cnf model);
  assert (Assignment.subset required model);
  (* Work inside the model's universe so satisfiability checks cannot cheat
     by turning on variables outside [model]. *)
  let cnf = Cnf.restrict cnf ~keep:model in
  (* Commit each true variable of [model] to false if the formula stays
     satisfiable under the commitments so far, to true otherwise.  Variables
     are visited largest-[<] first so the surviving set prefers [<]-small
     variables, matching the MSA tie-breaking discipline. *)
  let candidates =
    Assignment.diff model required |> Assignment.to_list |> Order.sort order |> List.rev
  in
  let keep, _dropped =
    List.fold_left
      (fun (keep, dropped) v ->
        let attempt =
          Cnf.condition_false cnf (Assignment.add v dropped) |> fun c ->
          Cnf.condition_true c keep
        in
        match dpll attempt Assignment.empty with
        | Some _ -> (keep, Assignment.add v dropped)
        | None -> (Assignment.add v keep, dropped))
      (required, Assignment.empty) candidates
  in
  assert (Cnf.holds cnf keep);
  keep
