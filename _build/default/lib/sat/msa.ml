open Lbr_logic

module Engine = struct
  type clause_state = {
    heads : Var.t array;  (* positive literals inside the universe *)
    mutable premises_left : int;
    mutable satisfied : bool;
  }

  type t = {
    order : Order.t;
    truth : bool array;  (* indexed by variable id *)
    in_universe : bool array;
    clauses : clause_state array;
    occurs_premise : int list array;  (* var id -> clauses where it is a premise *)
    occurs_head : int list array;
    queue : Var.t Queue.t;
    mutable trues : Assignment.t;
    mutable conflicted : bool;
  }

  let max_var cnf universe =
    let m = ref (-1) in
    Assignment.iter (fun v -> if v > !m then m := v) (Cnf.vars cnf);
    Assignment.iter (fun v -> if v > !m then m := v) universe;
    !m

  let is_true t v = v < Array.length t.truth && t.truth.(v)

  let true_set t = t.trues

  (* Turn [v] true and enqueue it for propagation. *)
  let set_true t v =
    if not t.truth.(v) then begin
      t.truth.(v) <- true;
      t.trues <- Assignment.add v t.trues;
      Queue.push v t.queue
    end

  (* A clause whose premises are all true and whose satisfied flag is unset:
     all heads are false (head truths mark the flag eagerly), so choose the
     [<]-smallest head, or conflict when there is none. *)
  let trigger t ci =
    let c = t.clauses.(ci) in
    if not c.satisfied then begin
      (* A head may already be true but still sitting in the queue (its
         satisfied-flag sweep has not run yet); recheck before choosing. *)
      if Array.exists (fun h -> t.truth.(h)) c.heads then c.satisfied <- true
      else
        match Order.min_of_array t.order c.heads ~keep:(fun _ -> true) with
        | None -> t.conflicted <- true
        | Some h ->
            c.satisfied <- true;
            set_true t h
    end

  let drain t =
    while (not t.conflicted) && not (Queue.is_empty t.queue) do
      let v = Queue.pop t.queue in
      List.iter (fun ci -> t.clauses.(ci).satisfied <- true) t.occurs_head.(v);
      List.iter
        (fun ci ->
          let c = t.clauses.(ci) in
          c.premises_left <- c.premises_left - 1;
          if c.premises_left = 0 then trigger t ci)
        t.occurs_premise.(v)
    done

  let create cnf ~order ~universe =
    let n = max_var cnf universe + 1 in
    let in_universe = Array.make n false in
    Assignment.iter (fun v -> in_universe.(v) <- true) universe;
    let relevant =
      (* Drop clauses pre-satisfied by the restriction: any premise outside
         the universe is false, making the clause true. *)
      List.filter
        (fun (c : Clause.t) -> Array.for_all (fun v -> in_universe.(v)) c.neg)
        (Cnf.clauses cnf)
    in
    let states =
      List.map
        (fun (c : Clause.t) ->
          let heads = Array.to_list c.pos |> List.filter (fun v -> in_universe.(v)) in
          {
            heads = Array.of_list heads;
            premises_left = Array.length c.neg;
            satisfied = false;
          })
        relevant
      |> Array.of_list
    in
    let occurs_premise = Array.make n [] and occurs_head = Array.make n [] in
    List.iteri
      (fun ci (c : Clause.t) ->
        Array.iter (fun v -> occurs_premise.(v) <- ci :: occurs_premise.(v)) c.neg;
        Array.iter
          (fun v -> if in_universe.(v) then occurs_head.(v) <- ci :: occurs_head.(v))
          c.pos)
      relevant;
    let t =
      {
        order;
        truth = Array.make n false;
        in_universe;
        clauses = states;
        occurs_premise;
        occurs_head;
        queue = Queue.create ();
        trues = Assignment.empty;
        conflicted = Cnf.is_unsat cnf;
      }
    in
    (* Zero-premise clauses fire immediately. *)
    Array.iteri (fun ci c -> if c.premises_left = 0 then trigger t ci) t.clauses;
    drain t;
    if t.conflicted then Error `Conflict else Ok t

  let assume t v =
    if t.conflicted then Error `Conflict
    else if v >= Array.length t.in_universe || not t.in_universe.(v) then Error `Conflict
    else begin
      set_true t v;
      drain t;
      if t.conflicted then Error `Conflict else Ok ()
    end

  let assume_all t vs =
    List.fold_left
      (fun acc v -> match acc with Error _ as e -> e | Ok () -> assume t v)
      (Ok ()) vs
end

let compute cnf ~order ?universe ?(required = Assignment.empty) () =
  let universe =
    match universe with
    | Some u -> u
    | None -> Assignment.union (Cnf.vars cnf) required
  in
  if not (Assignment.subset required universe) then None
  else
    let fast =
      match Engine.create cnf ~order ~universe with
      | Error `Conflict -> None
      | Ok engine -> (
          match Engine.assume_all engine (Assignment.to_list required) with
          | Ok () -> Some (Engine.true_set engine)
          | Error `Conflict -> None)
    in
    match fast with
    | Some _ as result -> result
    | None ->
        (* Fallback: DPLL search, then greedy minimization.  Reached only for
           formulas outside the implication fragment. *)
        let restricted = Cnf.restrict cnf ~keep:universe in
        (match Solver.solve_with restricted ~required with
        | None -> None
        | Some model ->
            Some (Solver.minimize restricted ~order ~required ~model))
