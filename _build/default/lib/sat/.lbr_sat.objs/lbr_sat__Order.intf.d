lib/sat/order.mli: Assignment Lbr_logic Var
