lib/sat/msa.ml: Array Assignment Clause Cnf Lbr_logic List Order Queue Solver Var
