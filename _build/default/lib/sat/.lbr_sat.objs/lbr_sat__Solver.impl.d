lib/sat/solver.ml: Array Assignment Clause Cnf Lbr_logic List Option Order
