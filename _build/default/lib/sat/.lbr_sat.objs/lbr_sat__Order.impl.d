lib/sat/order.ml: Array Assignment Hashtbl Int Lbr_logic List Var
