lib/sat/msa.mli: Assignment Cnf Lbr_logic Order Var
