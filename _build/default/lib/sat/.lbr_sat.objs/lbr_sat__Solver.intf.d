lib/sat/solver.mli: Assignment Cnf Lbr_logic Order
