(** Total variable orders.

    GBR's termination argument and the minimality theorem for graph
    constraints both hinge on a fixed total order [<] of the variables: the
    MSA procedure resolves every disjunctive choice by picking the
    [<]-smallest candidate, and the progression introduces excluded variables
    in [<]-order. *)

open Lbr_logic

type t

val by_creation : Var.Pool.t -> t
(** Variables in the order they were registered — the default order used
    throughout the paper's examples. *)

val of_list : Var.t list -> t
(** An explicit order; raises [Invalid_argument] on duplicates.  Variables
    not listed compare larger than all listed ones, by identifier. *)

val reversed : t -> t

val rank : t -> Var.t -> int
(** Smaller rank = earlier in the order. *)

val compare : t -> Var.t -> Var.t -> int

val min_of : t -> Assignment.t -> Var.t option
(** The [<]-smallest element of a set. *)

val min_of_array : t -> Var.t array -> keep:(Var.t -> bool) -> Var.t option
(** The [<]-smallest array element satisfying [keep]. *)

val sort : t -> Var.t list -> Var.t list
