open Lbr_jvm
open Lbr_jvm.Classfile

let simple_name name =
  match String.rindex_opt name '/' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let jtype ty = Jtype.to_string ty |> simple_name

let expr_of_insn insn =
  match insn with
  | Invoke_virtual { owner; meth } -> Some (Printf.sprintf "((%s) o).%s();" (simple_name owner) meth)
  | Invoke_interface { owner; meth } ->
      Some (Printf.sprintf "((%s) o).%s();" (simple_name owner) meth)
  | Invoke_static { owner; meth } -> Some (Printf.sprintf "%s.%s();" (simple_name owner) meth)
  | New_instance { cls; ctor } ->
      let args = String.concat ", " (List.init ctor (fun i -> Printf.sprintf "a%d" i)) in
      Some (Printf.sprintf "new %s(%s);" (simple_name cls) args)
  | Get_field { owner; field } -> Some (Printf.sprintf "x = ((%s) o).%s;" (simple_name owner) field)
  | Put_field { owner; field } -> Some (Printf.sprintf "((%s) o).%s = x;" (simple_name owner) field)
  | Check_cast t -> Some (Printf.sprintf "o = (%s) o;" (simple_name t))
  | Instance_of t -> Some (Printf.sprintf "b = o instanceof %s;" (simple_name t))
  | Upcast { from_; to_ } ->
      Some (Printf.sprintf "%s u = (%s) v;" (simple_name to_) (simple_name from_))
  | Load_const_class c -> Some (Printf.sprintf "Class<?> k = %s.class;" (simple_name c))
  | Arith -> Some "x = x + 1;"
  | Load_store -> None
  | Return_insn -> Some "return;"

let body_lines insns = List.filter_map expr_of_insn insns

let decompile_class _pool (c : cls) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter (fun a -> line "@%s" (simple_name a)) c.annotations;
  let kind = if c.is_interface then "interface" else if c.is_abstract then "abstract class" else "class" in
  let extends = if c.super = object_name then "" else " extends " ^ simple_name c.super in
  let implements =
    if c.interfaces = [] then ""
    else
      (if c.is_interface then " extends " else " implements ")
      ^ String.concat ", " (List.map simple_name c.interfaces)
  in
  line "%s %s%s%s {" kind (simple_name c.name) extends implements;
  List.iter
    (fun (f : field) ->
      line "  %s%s %s;" (if f.f_static then "static " else "") (jtype f.f_type) f.f_name)
    c.fields;
  List.iteri
    (fun index (k : ctor) ->
      let params =
        String.concat ", " (List.mapi (fun i t -> Printf.sprintf "%s a%d" (jtype t) i) k.k_params)
      in
      line "  %s(%s) { // <init>#%d" (simple_name c.name) params index;
      List.iter (fun l -> line "    %s" l) (body_lines k.k_body);
      line "  }")
    c.ctors;
  List.iter
    (fun (m : meth) ->
      let params =
        String.concat ", " (List.mapi (fun i t -> Printf.sprintf "%s a%d" (jtype t) i) m.m_params)
      in
      let mods =
        (if m.m_static then "static " else "") ^ if m.m_abstract then "abstract " else ""
      in
      if m.m_abstract then line "  %s%s %s(%s);" mods (jtype m.m_ret) m.m_name params
      else begin
        line "  %s%s %s(%s) {" mods (jtype m.m_ret) m.m_name params;
        List.iter (fun l -> line "    %s" l) (body_lines m.m_body);
        line "  }"
      end)
    c.methods;
  line "}";
  Buffer.contents buf

let decompile pool =
  Classpool.classes pool
  |> List.map (decompile_class pool)
  |> String.concat "\n"

let line_count pool =
  String.split_on_char '\n' (decompile pool) |> List.length
