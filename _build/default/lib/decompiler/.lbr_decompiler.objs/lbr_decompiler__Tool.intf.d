lib/decompiler/tool.mli: Classpool Lbr_jvm Pattern
