lib/decompiler/tool.ml: List Pattern String
