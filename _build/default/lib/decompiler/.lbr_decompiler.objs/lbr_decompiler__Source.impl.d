lib/decompiler/source.ml: Buffer Classpool Jtype Lbr_jvm List Printf String
