lib/decompiler/pattern.ml: Classfile Classpool Hashtbl Hierarchy Item Lbr_jvm List Printf String
