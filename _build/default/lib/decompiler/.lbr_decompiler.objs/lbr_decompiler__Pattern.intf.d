lib/decompiler/pattern.mli: Classpool Item Lbr_jvm
