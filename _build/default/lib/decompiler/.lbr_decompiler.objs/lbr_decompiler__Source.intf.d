lib/decompiler/source.mli: Classfile Classpool Lbr_jvm
