(** Bug-trigger patterns for the simulated decompilers.

    A pattern is a structural feature combination that makes a (simulated)
    decompiler emit source that fails to re-compile.  Each detected instance
    carries the "compiler" error message (a stable string, so preserving the
    full error message is a set comparison) and, for diagnostics and tests,
    the item set whose joint presence fires it.

    All patterns are monotone: they only test for the {e presence} of
    features, so a sub-pool can never produce an error message the original
    pool did not — matching the paper's assumption that the black box is
    monotone on valid sub-inputs. *)

open Lbr_jvm

type instance = {
  pattern : string;
  message : string;  (** the error message the compiler would print *)
  requires : Item.t list;  (** items whose joint presence fires the bug *)
}

type t = {
  name : string;
  detect : Classpool.t -> instance list;
}

val all : t list
(** The pattern library, in a fixed order. *)

val find : string -> t
(** Lookup by name; raises [Not_found]. *)
