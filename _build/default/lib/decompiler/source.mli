(** Pseudo-Java source emission — the "decompiled output".

    Used by examples to show what a decompiler's output looks like before
    and after reduction; the error-message pipeline itself works on the
    structural patterns directly. *)

open Lbr_jvm

val decompile_class : Classpool.t -> Classfile.cls -> string
val decompile : Classpool.t -> string
(** The whole pool, classes in name order. *)

val line_count : Classpool.t -> int
(** Lines of decompiled source — the paper's "number of lines in the
    decompiled program" metric (7,661 → 815 in the headline example). *)
