(** Simulated decompilers — the buggy tools whose failures we reduce.

    A tool is a named set of bug patterns (the paper evaluates three real
    decompilers; we ship three simulated ones with different bug profiles).
    Running the tool on a pool "decompiles" it and "re-compiles" the output:
    the result is the sorted set of compiler error messages.  A tool is
    buggy on an input iff that set is non-empty. *)

open Lbr_jvm

type t = { name : string; patterns : Pattern.t list }

val cfr_sim : t
val fernflower_sim : t
val procyon_sim : t

val all : t list

val errors : t -> Classpool.t -> string list
(** Sorted, deduplicated error messages from decompile-and-recompile. *)

val instances : t -> Classpool.t -> Pattern.instance list

val is_buggy_on : t -> Classpool.t -> bool
