type t = { name : string; patterns : Pattern.t list }

let pattern = Pattern.find

let cfr_sim =
  { name = "cfr-sim"; patterns = [ pattern "iface-cast"; pattern "diamond"; pattern "ctor-overload" ] }

let fernflower_sim =
  {
    name = "fernflower-sim";
    patterns = [ pattern "reflective-ldc"; pattern "inner-annot"; pattern "static-super" ];
  }

let procyon_sim =
  {
    name = "procyon-sim";
    patterns = [ pattern "abstract-super"; pattern "upcast-iface"; pattern "iface-cast" ];
  }

let all = [ cfr_sim; fernflower_sim; procyon_sim ]

let instances t pool = List.concat_map (fun (p : Pattern.t) -> p.detect pool) t.patterns

let errors t pool =
  instances t pool
  |> List.map (fun (i : Pattern.instance) -> i.message)
  |> List.sort_uniq String.compare

let is_buggy_on t pool = errors t pool <> []
