lib/jvm/checker.mli: Classpool Format
