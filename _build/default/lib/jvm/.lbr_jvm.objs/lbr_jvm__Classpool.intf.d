lib/jvm/classpool.mli: Classfile
