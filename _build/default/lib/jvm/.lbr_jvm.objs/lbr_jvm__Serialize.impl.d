lib/jvm/serialize.ml: Array Buffer Char Classfile Classpool Hashtbl Jtype List Printf String
