lib/jvm/item.ml: Format Printf Stdlib
