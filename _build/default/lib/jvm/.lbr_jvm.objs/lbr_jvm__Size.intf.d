lib/jvm/size.mli: Classpool
