lib/jvm/classpool.ml: Classfile List Map Printf String
