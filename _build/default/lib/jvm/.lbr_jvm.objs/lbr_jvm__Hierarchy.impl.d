lib/jvm/hierarchy.ml: Classfile Classpool Hashtbl List Printf
