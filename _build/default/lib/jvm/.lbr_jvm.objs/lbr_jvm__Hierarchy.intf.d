lib/jvm/hierarchy.mli: Classfile Classpool
