lib/jvm/jvars.mli: Assignment Classpool Formula Item Lbr_logic Var
