lib/jvm/constraints.mli: Classpool Cnf Formula Hierarchy Jvars Lbr_logic
