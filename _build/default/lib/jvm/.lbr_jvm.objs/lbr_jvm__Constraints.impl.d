lib/jvm/constraints.ml: Classfile Classpool Cnf Formula Hashtbl Hierarchy Int Item Jtype Jvars Lbr_logic List Printf
