lib/jvm/size.ml: Classfile Classpool Jvars List String
