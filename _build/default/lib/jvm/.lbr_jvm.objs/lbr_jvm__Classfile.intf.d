lib/jvm/classfile.mli: Format Jtype
