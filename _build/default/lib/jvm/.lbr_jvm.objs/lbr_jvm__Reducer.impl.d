lib/jvm/reducer.ml: Array Assignment Classfile Classpool Hashtbl Item Jvars Lbr_logic List
