lib/jvm/serialize.mli: Classfile Classpool
