lib/jvm/classfile.ml: Format Jtype List String
