lib/jvm/checker.ml: Classfile Classpool Format Hierarchy Jtype List Printf
