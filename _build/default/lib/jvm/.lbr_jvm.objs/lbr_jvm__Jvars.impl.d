lib/jvm/jvars.ml: Assignment Classfile Classpool Formula Hashtbl Item Lbr_logic List Var
