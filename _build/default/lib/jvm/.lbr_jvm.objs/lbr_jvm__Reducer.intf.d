lib/jvm/reducer.mli: Assignment Classpool Jvars Lbr_logic
