lib/jvm/jtype.ml:
