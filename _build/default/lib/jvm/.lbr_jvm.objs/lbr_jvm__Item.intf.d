lib/jvm/item.mli: Format
