lib/jvm/jtype.mli:
