(** Pool well-formedness checking — the stand-in for the JVM verifier plus
    the resolution/linking rules of the class-file format.

    This checker defines what "valid sub-input" means for the bytecode
    substrate: the soundness property of the constraint generator (mirroring
    Theorem 3.1) is that reducing a valid pool with any satisfying
    assignment yields a pool this checker accepts. *)

type violation = { where : string; what : string }

val pp_violation : Format.formatter -> violation -> unit

val check : Classpool.t -> violation list
(** All well-formedness violations; the empty list means the pool is valid. *)

val is_valid : Classpool.t -> bool
