module SMap = Map.Make (String)

type t = Classfile.cls SMap.t

let of_classes classes =
  List.fold_left
    (fun pool (c : Classfile.cls) ->
      if SMap.mem c.name pool then
        invalid_arg (Printf.sprintf "Classpool.of_classes: duplicate class %s" c.name)
      else SMap.add c.name c pool)
    SMap.empty classes

let find pool name = SMap.find_opt name pool

let mem pool name = SMap.mem name pool

let classes pool = SMap.bindings pool |> List.map snd

let names pool = SMap.bindings pool |> List.map fst

let size pool = SMap.cardinal pool

let fold f pool acc = SMap.fold (fun _ c acc -> f c acc) pool acc
