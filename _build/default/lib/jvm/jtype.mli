(** Simplified JVM types: primitives, class references, and arrays. *)

type t =
  | Int
  | Long
  | Double
  | Bool
  | Void
  | Ref of string  (** a class or interface by fully-qualified-ish name *)
  | Array of t

val ref_name : t -> string option
(** The class name a type mentions, through arrays; [None] for primitives. *)

val to_string : t -> string
val equal : t -> t -> bool
