type t =
  | Class of string
  | Extends of string
  | Implements of { cls : string; iface : string }
  | Iface_extends of { iface : string; super : string }
  | Field of { cls : string; field : string }
  | Method of { cls : string; meth : string }
  | Code of { cls : string; meth : string }
  | Ctor of { cls : string; index : int }
  | Ctor_code of { cls : string; index : int }
  | Annotation of { cls : string; index : int }
  | Inner_class of { cls : string; index : int }

let to_string = function
  | Class c -> c
  | Extends c -> Printf.sprintf "%s!extends" c
  | Implements { cls; iface } -> Printf.sprintf "%s<%s" cls iface
  | Iface_extends { iface; super } -> Printf.sprintf "%s<:%s" iface super
  | Field { cls; field } -> Printf.sprintf "%s#%s" cls field
  | Method { cls; meth } -> Printf.sprintf "%s.%s()" cls meth
  | Code { cls; meth } -> Printf.sprintf "%s.%s()!code" cls meth
  | Ctor { cls; index } -> Printf.sprintf "%s.<init>#%d" cls index
  | Ctor_code { cls; index } -> Printf.sprintf "%s.<init>#%d!code" cls index
  | Annotation { cls; index } -> Printf.sprintf "%s@%d" cls index
  | Inner_class { cls; index } -> Printf.sprintf "%s$%d" cls index

let owner = function
  | Class c | Extends c -> c
  | Implements { cls; _ }
  | Field { cls; _ }
  | Method { cls; _ }
  | Code { cls; _ }
  | Ctor { cls; _ }
  | Ctor_code { cls; _ }
  | Annotation { cls; _ }
  | Inner_class { cls; _ } -> cls
  | Iface_extends { iface; _ } -> iface

let compare = Stdlib.compare
let equal = Stdlib.( = )
let pp ppf t = Format.fprintf ppf "[%s]" (to_string t)
