(** The reducible items of a class pool — the paper's "total of 11 kinds of
    items", each of which becomes one Boolean variable. *)

type t =
  | Class of string
  | Extends of string
      (** the super-class relation of a class; removing it re-parents the
          class onto [Object] *)
  | Implements of { cls : string; iface : string }
  | Iface_extends of { iface : string; super : string }
  | Field of { cls : string; field : string }
  | Method of { cls : string; meth : string }
  | Code of { cls : string; meth : string }
  | Ctor of { cls : string; index : int }
  | Ctor_code of { cls : string; index : int }
  | Annotation of { cls : string; index : int }
  | Inner_class of { cls : string; index : int }

val to_string : t -> string
(** A unique, stable, human-readable name, used as the variable name. *)

val owner : t -> string
(** The class the item belongs to. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
