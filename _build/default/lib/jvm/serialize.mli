(** Binary serialization of class pools.

    A compact class-file-like container format (magic, version, constant
    pool of strings, then structured records), so pools can be written to
    disk, shipped in bug reports, and measured by their true serialized
    size.  The format round-trips exactly ([of_bytes (to_bytes p) = p]),
    which the test suite checks by property.

    Layout (all integers big-endian):
    {v
    file   := magic(4: "LBRC") version(u16) class_count(u16) class*
    class  := strtab body
    strtab := count(u16) (len(u16) bytes)*      — per-class string table
    body   := name super flags(u8) interfaces fields methods ctors
              annotations inner_classes
    v}
    Strings inside a class body are u16 indices into its string table;
    lists are length-prefixed (u16). *)

val class_to_bytes : Classfile.cls -> string
val class_of_bytes : string -> (Classfile.cls, string) result

val to_bytes : Classpool.t -> string
val of_bytes : string -> (Classpool.t, string) result

val serialized_size : Classpool.t -> int
(** [String.length (to_bytes pool)] — the honest byte size of the pool. *)

val write_file : string -> Classpool.t -> unit
val read_file : string -> (Classpool.t, string) result
