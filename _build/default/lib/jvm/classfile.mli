(** A simplified Java class-file model.

    This substrate plays the role of real bytecode in the paper's pipeline:
    it has the structural features the constraint generator must model —
    class/interface hierarchies with multiple interfaces and interface
    inheritance, abstract classes and methods, fields, overloaded
    constructors, method bodies made of instructions that reference other
    items, casts that exercise subtype relations, and reflection
    ([Load_const_class]) requiring the generics approximation of §3. *)

type insn =
  | Invoke_virtual of { owner : string; meth : string }
      (** resolve [meth] on [owner]'s class hierarchy *)
  | Invoke_interface of { owner : string; meth : string }
      (** resolve on an interface hierarchy *)
  | Invoke_static of { owner : string; meth : string }
  | New_instance of { cls : string; ctor : int }
      (** instantiate, calling constructor number [ctor] *)
  | Get_field of { owner : string; field : string }
  | Put_field of { owner : string; field : string }
  | Check_cast of string
  | Instance_of of string
  | Upcast of { from_ : string; to_ : string }
      (** a point where the verifier needs [from_ ≤ to_] (argument passing,
          returns, field stores) *)
  | Load_const_class of string
      (** [ldc] of a class constant: reflection, triggering the
          superclass-preservation approximation for generics *)
  | Arith
  | Load_store
  | Return_insn

type field = { f_name : string; f_type : Jtype.t; f_static : bool }

type meth = {
  m_name : string;  (** methods are identified by name; no overloading *)
  m_params : Jtype.t list;
  m_ret : Jtype.t;
  m_static : bool;
  m_abstract : bool;
  m_body : insn list;  (** empty when abstract *)
}

type ctor = { k_params : Jtype.t list; k_body : insn list }

type cls = {
  name : string;
  super : string;  (** superclass; ["java/lang/Object"] terminates *)
  interfaces : string list;  (** implemented (class) or extended (interface) *)
  is_interface : bool;
  is_abstract : bool;
  fields : field list;
  methods : meth list;
  ctors : ctor list;  (** empty for interfaces *)
  annotations : string list;  (** annotation class references *)
  inner_classes : string list;  (** InnerClasses attribute references *)
}

val object_name : string
val string_name : string

val is_external : string -> bool
(** Classes outside the pool namespace (JDK stand-ins) that reduction must
    preserve: [Object], [String] and anything prefixed ["java/"]. *)

val find_method : cls -> string -> meth option
val find_field : cls -> string -> field option

val pp_insn : Format.formatter -> insn -> unit
