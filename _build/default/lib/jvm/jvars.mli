(** Item inventory and Boolean-variable derivation for class pools. *)

open Lbr_logic

val items_of_pool : Classpool.t -> Item.t list
(** Every reducible item, in deterministic order: classes in name order;
    within a class: the class, its extends relation (when the superclass is
    internal), implements / interface-extends relations, fields, methods
    (each method followed by its code when present), constructors (likewise),
    annotations, inner-class attributes. *)

type t

val derive : Var.Pool.t -> Classpool.t -> t
(** Register one variable per item in the pool (creation order = inventory
    order, the default reduction order [<]). *)

val all : t -> Assignment.t
val items : t -> Item.t list
val var : t -> Item.t -> Var.t
(** Raises [Not_found] for items without a variable (e.g. anything on an
    external class). *)

val var_opt : t -> Item.t -> Var.t option

val formula : t -> Item.t -> Formula.t
(** Like {!var} but [⊤] when the item belongs to an external class. *)

val item_of : t -> Var.t -> Item.t
val mem : t -> Var.t -> bool
