type edge =
  | Eext of string
  | Eimpl of string * string
  | Eiext of string * string

type path = edge list

(* Outgoing supertype edges of a node: (edge, target) pairs.  External
   classes are opaque: no out-edges. *)
let out_edges pool name =
  match Classpool.find pool name with
  | None -> []
  | Some (c : Classfile.cls) ->
      if c.is_interface then List.map (fun j -> (Eiext (name, j), j)) c.interfaces
      else
        let ext = if Classfile.is_external c.super then [] else [ (Eext name, c.super) ] in
        ext @ List.map (fun i -> (Eimpl (name, i), i)) c.interfaces

let check_acyclic pool =
  (* Colour-marking DFS over the supertype graph. *)
  let state = Hashtbl.create 64 in
  let rec visit name =
    match Hashtbl.find_opt state name with
    | Some `Done -> Ok ()
    | Some `Active -> Error (Printf.sprintf "cyclic hierarchy through %s" name)
    | None ->
        Hashtbl.add state name `Active;
        let rec all = function
          | [] -> Ok ()
          | (_, target) :: rest -> (
              match visit target with Ok () -> all rest | Error _ as e -> e)
        in
        let result = all (out_edges pool name) in
        Hashtbl.replace state name `Done;
        result
  in
  List.fold_left
    (fun acc name -> match acc with Error _ -> acc | Ok () -> visit name)
    (Ok ()) (Classpool.names pool)

let super_chain pool start =
  let rec go acc name =
    match Classpool.find pool name with
    | None -> List.rev (name :: acc)
    | Some c -> go (name :: acc) c.Classfile.super
  in
  go [] start

(* Supertype nodes reachable from [start] (excluding [start] itself), in
   visit order, each visited once. *)
let reachable_supertypes pool start =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec dfs name =
    List.iter
      (fun (_, target) ->
        if not (Hashtbl.mem seen target) then begin
          Hashtbl.add seen target ();
          acc := target :: !acc;
          dfs target
        end)
      (out_edges pool name)
  in
  Hashtbl.add seen start ();
  dfs start;
  List.rev !acc

(* The supertype DAG can contain exponentially many paths (diamonds stack
   multiplicatively), so path enumeration is pruned by a memoized
   can-reach-destination test — dead branches are never entered — and capped
   at [max_paths] results.  Dropping paths only strengthens the generated
   constraints (fewer witnesses in a disjunction), which preserves
   soundness. *)
let paths_to pool ~src ~dst ~max_paths =
  let memo = Hashtbl.create 16 in
  let rec reaches n =
    match Hashtbl.find_opt memo n with
    | Some b -> b
    | None ->
        Hashtbl.add memo n false;
        let b = n = dst || List.exists (fun (_, t) -> reaches t) (out_edges pool n) in
        Hashtbl.replace memo n b;
        b
  in
  if not (reaches src) then []
  else begin
    let acc = ref [] in
    let count = ref 0 in
    let rec dfs n rev_path =
      if !count < max_paths then begin
        if n = dst then begin
          incr count;
          acc := List.rev rev_path :: !acc
        end
        else
          List.iter
            (fun (e, t) -> if reaches t then dfs t (e :: rev_path))
            (out_edges pool n)
      end
    in
    dfs src [];
    List.rev !acc
  end

let paths_between pool ~src ~dst ~max_paths = paths_to pool ~src ~dst ~max_paths

let subtype_paths pool ~sub ~sup = paths_to pool ~src:sub ~dst:sup ~max_paths:3

let method_matches ~static (m : Classfile.meth) name = m.m_name = name && m.m_static = static

(* Per-destination path budget for resolution witnesses. *)
let candidate_paths = 2

let method_candidates pool ~owner ~meth ~static =
  if Classfile.is_external owner || not (Classpool.mem pool owner) then [ ("", []) ]
  else begin
    let defines name =
      match Classpool.find pool name with
      | None -> false
      | Some c -> (
          match Classfile.find_method c meth with
          | Some m -> method_matches ~static m meth
          | None -> false)
    in
    let targets = owner :: reachable_supertypes pool owner in
    List.concat_map
      (fun d ->
        if not (defines d) then []
        else
          paths_to pool ~src:owner ~dst:d ~max_paths:candidate_paths
          |> List.map (fun p -> (d, p)))
      targets
  end

let field_candidates pool ~owner ~field =
  if Classfile.is_external owner || not (Classpool.mem pool owner) then [ ("", []) ]
  else begin
    (* Fields resolve on the class chain only, which is a simple path. *)
    let acc = ref [] in
    let rec go name rev_path =
      match Classpool.find pool name with
      | None -> ()
      | Some c ->
          (match Classfile.find_field c field with
          | Some _ -> acc := (name, List.rev rev_path) :: !acc
          | None -> ());
          if (not c.is_interface) && not (Classfile.is_external c.super) then
            go c.super (Eext name :: rev_path)
    in
    go owner [];
    List.rev !acc
  end

let interfaces_of pool start =
  reachable_supertypes pool start
  |> List.concat_map (fun name ->
         match Classpool.find pool name with
         | Some c when c.Classfile.is_interface ->
             paths_to pool ~src:start ~dst:name ~max_paths:candidate_paths
             |> List.map (fun p -> (name, p))
         | Some _ | None -> [])

let abstract_obligations pool (cls : Classfile.cls) =
  let start = cls.Classfile.name in
  reachable_supertypes pool start
  |> List.concat_map (fun name ->
         match Classpool.find pool name with
         | Some c when c.Classfile.is_interface || c.Classfile.is_abstract ->
             List.filter_map
               (fun (m : Classfile.meth) ->
                 if m.m_abstract then Some (name, m.m_name) else None)
               c.Classfile.methods
         | Some _ | None -> [])
