open Lbr_logic
open Classfile

let apply jv pool phi =
  let keep item =
    match Jvars.var_opt jv item with
    | Some v -> Assignment.mem v phi
    | None -> true (* itemless (external-super extends etc.): permanent *)
  in
  let reduce_class (c : cls) acc =
    if not (keep (Item.Class c.name)) then acc
    else
      let super =
        if c.is_interface || Classfile.is_external c.super then c.super
        else if keep (Item.Extends c.name) then c.super
        else object_name
      in
      let interfaces =
        List.filter
          (fun i ->
            keep
              (if c.is_interface then Item.Iface_extends { iface = c.name; super = i }
               else Item.Implements { cls = c.name; iface = i }))
          c.interfaces
      in
      let fields =
        List.filter (fun (f : field) -> keep (Item.Field { cls = c.name; field = f.f_name })) c.fields
      in
      let methods =
        List.filter_map
          (fun (m : meth) ->
            if not (keep (Item.Method { cls = c.name; meth = m.m_name })) then None
            else if m.m_abstract then Some m
            else if keep (Item.Code { cls = c.name; meth = m.m_name }) then Some m
            else Some { m with m_body = [ Return_insn ] })
          c.methods
      in
      (* Indices shift after filtering: stub removed bodies first, then drop
         removed constructors.  New_instance sites referencing a removed
         constructor are ruled out by the constraints; sites referencing kept
         ones are renumbered below. *)
      let ctors =
        List.mapi (fun index k -> (index, k)) c.ctors
        |> List.filter (fun (index, _) -> keep (Item.Ctor { cls = c.name; index }))
        |> List.map (fun (index, k) ->
               if keep (Item.Ctor_code { cls = c.name; index }) then k
               else { k with k_body = [ Return_insn ] })
      in
      let annotations =
        List.filteri (fun index _ -> keep (Item.Annotation { cls = c.name; index })) c.annotations
      in
      let inner_classes =
        List.filteri (fun index _ -> keep (Item.Inner_class { cls = c.name; index })) c.inner_classes
      in
      { c with super; interfaces; fields; methods; ctors; annotations; inner_classes } :: acc
  in
  (* Constructor indices in New_instance must follow the renumbering. *)
  let ctor_index_map : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  Classpool.fold
    (fun c () ->
      let mapping = Array.make (List.length c.ctors) (-1) in
      let next = ref 0 in
      List.iteri
        (fun i _ ->
          if keep (Item.Ctor { cls = c.name; index = i }) then begin
            mapping.(i) <- !next;
            incr next
          end)
        c.ctors;
      Hashtbl.add ctor_index_map c.name mapping)
    pool ();
  let remap_insn insn =
    match insn with
    | New_instance { cls; ctor } -> (
        match Hashtbl.find_opt ctor_index_map cls with
        | Some mapping when ctor < Array.length mapping && mapping.(ctor) >= 0 ->
            New_instance { cls; ctor = mapping.(ctor) }
        | Some _ | None -> insn)
    | Invoke_virtual _ | Invoke_interface _ | Invoke_static _ | Get_field _ | Put_field _
    | Check_cast _ | Instance_of _ | Upcast _ | Load_const_class _ | Arith | Load_store
    | Return_insn -> insn
  in
  let remap_class (c : cls) =
    {
      c with
      methods = List.map (fun (m : meth) -> { m with m_body = List.map remap_insn m.m_body }) c.methods;
      ctors = List.map (fun (k : ctor) -> { k with k_body = List.map remap_insn k.k_body }) c.ctors;
    }
  in
  Classpool.fold reduce_class pool [] |> List.map remap_class |> Classpool.of_classes
