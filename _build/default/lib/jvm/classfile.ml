type insn =
  | Invoke_virtual of { owner : string; meth : string }
  | Invoke_interface of { owner : string; meth : string }
  | Invoke_static of { owner : string; meth : string }
  | New_instance of { cls : string; ctor : int }
  | Get_field of { owner : string; field : string }
  | Put_field of { owner : string; field : string }
  | Check_cast of string
  | Instance_of of string
  | Upcast of { from_ : string; to_ : string }
  | Load_const_class of string
  | Arith
  | Load_store
  | Return_insn

type field = { f_name : string; f_type : Jtype.t; f_static : bool }

type meth = {
  m_name : string;
  m_params : Jtype.t list;
  m_ret : Jtype.t;
  m_static : bool;
  m_abstract : bool;
  m_body : insn list;
}

type ctor = { k_params : Jtype.t list; k_body : insn list }

type cls = {
  name : string;
  super : string;
  interfaces : string list;
  is_interface : bool;
  is_abstract : bool;
  fields : field list;
  methods : meth list;
  ctors : ctor list;
  annotations : string list;
  inner_classes : string list;
}

let object_name = "java/lang/Object"
let string_name = "java/lang/String"

let is_external name = String.length name >= 5 && String.sub name 0 5 = "java/"

let find_method cls name = List.find_opt (fun (m : meth) -> m.m_name = name) cls.methods

let find_field cls name = List.find_opt (fun (f : field) -> f.f_name = name) cls.fields

let pp_insn ppf = function
  | Invoke_virtual { owner; meth } -> Format.fprintf ppf "invokevirtual %s.%s" owner meth
  | Invoke_interface { owner; meth } -> Format.fprintf ppf "invokeinterface %s.%s" owner meth
  | Invoke_static { owner; meth } -> Format.fprintf ppf "invokestatic %s.%s" owner meth
  | New_instance { cls; ctor } -> Format.fprintf ppf "new %s.<init>#%d" cls ctor
  | Get_field { owner; field } -> Format.fprintf ppf "getfield %s.%s" owner field
  | Put_field { owner; field } -> Format.fprintf ppf "putfield %s.%s" owner field
  | Check_cast t -> Format.fprintf ppf "checkcast %s" t
  | Instance_of t -> Format.fprintf ppf "instanceof %s" t
  | Upcast { from_; to_ } -> Format.fprintf ppf "upcast %s -> %s" from_ to_
  | Load_const_class c -> Format.fprintf ppf "ldc %s.class" c
  | Arith -> Format.pp_print_string ppf "arith"
  | Load_store -> Format.pp_print_string ppf "loadstore"
  | Return_insn -> Format.pp_print_string ppf "return"
