type t = Int | Long | Double | Bool | Void | Ref of string | Array of t

let rec ref_name = function
  | Int | Long | Double | Bool | Void -> None
  | Ref name -> Some name
  | Array t -> ref_name t

let rec to_string = function
  | Int -> "int"
  | Long -> "long"
  | Double -> "double"
  | Bool -> "boolean"
  | Void -> "void"
  | Ref name -> name
  | Array t -> to_string t ^ "[]"

let equal = ( = )
