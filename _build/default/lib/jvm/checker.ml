open Classfile

type violation = { where : string; what : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.where v.what

let check pool =
  let violations = ref [] in
  let report where fmt =
    Format.kasprintf (fun what -> violations := { where; what } :: !violations) fmt
  in
  (match Hierarchy.check_acyclic pool with
  | Ok () -> ()
  | Error message -> report "hierarchy" "%s" message);
  if !violations <> [] then List.rev !violations
  else begin
    let is_interface_name name =
      match Classpool.find pool name with
      | Some c -> c.is_interface
      | None -> false (* external: callers decide *)
    in
    let check_type_exists where name =
      if (not (Classfile.is_external name)) && not (Classpool.mem pool name) then
        report where "reference to missing class %s" name
    in
    let check_type_ref where ty =
      match Jtype.ref_name ty with Some n -> check_type_exists where n | None -> ()
    in
    let check_insn where insn =
      match insn with
      | Invoke_virtual { owner; meth } | Invoke_static { owner; meth } -> (
          check_type_exists where owner;
          match Hierarchy.method_candidates pool ~owner ~meth
                  ~static:(match insn with Invoke_static _ -> true | _ -> false)
          with
          | [] -> report where "unresolved method %s.%s" owner meth
          | _ :: _ -> ())
      | Invoke_interface { owner; meth } -> (
          check_type_exists where owner;
          (match Classpool.find pool owner with
          | Some c when not c.is_interface ->
              report where "invokeinterface on class %s" owner
          | Some _ | None -> ());
          match Hierarchy.method_candidates pool ~owner ~meth ~static:false with
          | [] -> report where "unresolved interface method %s.%s" owner meth
          | _ :: _ -> ())
      | New_instance { cls; ctor } -> (
          check_type_exists where cls;
          match Classpool.find pool cls with
          | None -> ()
          | Some c ->
              if c.is_interface then report where "new on interface %s" cls
              else if c.is_abstract then report where "new on abstract class %s" cls
              else if ctor >= List.length c.ctors then
                report where "missing constructor #%d of %s" ctor cls)
      | Get_field { owner; field } | Put_field { owner; field } -> (
          check_type_exists where owner;
          match Hierarchy.field_candidates pool ~owner ~field with
          | [] -> report where "unresolved field %s.%s" owner field
          | _ :: _ -> ())
      | Check_cast t | Instance_of t | Load_const_class t -> check_type_exists where t
      | Upcast { from_; to_ } ->
          check_type_exists where from_;
          check_type_exists where to_;
          if
            from_ <> to_
            && (not (Classfile.is_external from_))
            && not (Classfile.is_external to_ && to_ = object_name)
          then begin
            match Hierarchy.subtype_paths pool ~sub:from_ ~sup:to_ with
            | [] -> report where "%s is not a subtype of %s" from_ to_
            | _ :: _ -> ()
          end
      | Arith | Load_store | Return_insn -> ()
    in
    let check_class (c : cls) =
      let where_c = c.name in
      (* Supertype shape. *)
      (match Classpool.find pool c.super with
      | Some s when s.is_interface -> report where_c "superclass %s is an interface" c.super
      | Some _ -> ()
      | None -> check_type_exists where_c c.super);
      List.iter
        (fun i ->
          check_type_exists where_c i;
          if Classpool.mem pool i && not (is_interface_name i) then
            report where_c "implements non-interface %s" i)
        c.interfaces;
      if c.is_interface then begin
        if c.ctors <> [] then report where_c "interface with constructors";
        List.iter
          (fun (m : meth) ->
            if not m.m_abstract then report where_c "interface method %s has a body" m.m_name)
          c.methods
      end;
      (* Abstract methods only in abstract classes or interfaces; concrete
         classes must discharge all inherited abstract-method obligations. *)
      List.iter
        (fun (m : meth) ->
          if m.m_abstract && (not c.is_abstract) && not c.is_interface then
            report where_c "abstract method %s in concrete class" m.m_name;
          if m.m_abstract && m.m_body <> [] then
            report where_c "abstract method %s has code" m.m_name)
        c.methods;
      if (not c.is_abstract) && not c.is_interface then
        List.iter
          (fun (t, m) ->
            let concrete =
              Hierarchy.method_candidates pool ~owner:c.name ~meth:m ~static:false
              |> List.exists (fun (d, _) ->
                     match Classpool.find pool d with
                     | None -> d = "" (* external resolution: assume ok *)
                     | Some dc -> (
                         match Classfile.find_method dc m with
                         | Some dm -> not dm.m_abstract
                         | None -> false))
            in
            if not concrete then
              report where_c "missing implementation of %s declared by %s" m t)
          (Hierarchy.abstract_obligations pool c);
      (* Member shapes and bodies. *)
      List.iter (fun (f : field) -> check_type_ref (where_c ^ "#" ^ f.f_name) f.f_type) c.fields;
      List.iter
        (fun (m : meth) ->
          let where = Printf.sprintf "%s.%s()" c.name m.m_name in
          List.iter (check_type_ref where) (m.m_ret :: m.m_params);
          List.iter (check_insn where) m.m_body)
        c.methods;
      List.iteri
        (fun index (k : ctor) ->
          let where = Printf.sprintf "%s.<init>#%d" c.name index in
          List.iter (check_type_ref where) k.k_params;
          List.iter (check_insn where) k.k_body)
        c.ctors;
      List.iter (check_type_exists where_c) c.annotations;
      List.iter (check_type_exists where_c) c.inner_classes
    in
    List.iter check_class (Classpool.classes pool);
    List.rev !violations
  end

let is_valid pool = check pool = []
