(** Size metrics for class pools — the two axes of Figure 8a. *)

val classes : Classpool.t -> int
(** Number of internal classes. *)

val bytes : Classpool.t -> int
(** Estimated serialized size: constant-pool-ish overhead per class plus
    per-member and per-instruction costs.  The absolute scale is arbitrary;
    only ratios (final/original) are reported. *)

val items : Classpool.t -> int
(** Number of reducible items (the paper's "2.9k reducible items"
    statistic). *)
