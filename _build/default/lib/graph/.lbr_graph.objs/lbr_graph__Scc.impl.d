lib/graph/scc.ml: Array Bitset Digraph List Stack
