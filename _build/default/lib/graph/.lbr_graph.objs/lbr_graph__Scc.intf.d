lib/graph/scc.mli: Bitset Digraph
