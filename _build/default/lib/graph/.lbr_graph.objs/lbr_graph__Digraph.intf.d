lib/graph/digraph.mli: Bitset
