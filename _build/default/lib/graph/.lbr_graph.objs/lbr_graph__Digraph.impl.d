lib/graph/digraph.ml: Array Bitset Hashtbl List
