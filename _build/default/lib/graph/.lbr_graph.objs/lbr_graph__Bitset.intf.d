lib/graph/bitset.mli:
