(** Directed graphs over dense integer nodes.

    J-Reduce models dependencies as a graph whose nodes are items and whose
    edges are requirements: an edge [x → y] means "keeping [x] requires
    keeping [y]".  Valid sub-inputs are exactly the closed sets (closures)
    of this graph. *)

type t

val make : n:int -> edges:(int * int) list -> t
(** [make ~n ~edges] builds a graph on nodes [0..n-1].  Self loops and
    duplicate edges are dropped.  Raises [Invalid_argument] on out-of-range
    endpoints. *)

val num_nodes : t -> int
val num_edges : t -> int
val succ : t -> int -> int list
val edges : t -> (int * int) list
val reverse : t -> t

val reachable : t -> int -> Bitset.t
(** All nodes reachable from the given node, including itself — the node's
    closure. *)

val reachable_from_set : t -> int list -> Bitset.t
