type t = { bits : Bytes.t; capacity : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((capacity + 7) / 8) '\000'; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let union_into ~dst src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  for b = 0 to Bytes.length dst.bits - 1 do
    Bytes.set dst.bits b
      (Char.chr (Char.code (Bytes.get dst.bits b) lor Char.code (Bytes.get src.bits b)))
  done

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.bits;
  !n

let copy t = { bits = Bytes.copy t.bits; capacity = t.capacity }

let equal a b = a.capacity = b.capacity && Bytes.equal a.bits b.bits

let subset a b =
  a.capacity = b.capacity
  &&
  let ok = ref true in
  for i = 0 to Bytes.length a.bits - 1 do
    let ca = Char.code (Bytes.get a.bits i) and cb = Char.code (Bytes.get b.bits i) in
    if ca land lnot cb <> 0 then ok := false
  done;
  !ok

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let of_list capacity elements =
  let t = create capacity in
  List.iter (add t) elements;
  t
