(** Fixed-capacity mutable bit sets, used for closure computations where the
    per-node reachable sets of a few thousand nodes must stay cheap. *)

type t

val create : int -> t
(** All-zeros set of the given capacity. *)

val capacity : t -> int
val add : t -> int -> unit
val mem : t -> int -> bool
val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src].  Capacities must match. *)

val cardinal : t -> int
val copy : t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val to_list : t -> int list
val of_list : int -> int list -> t
val iter : (int -> unit) -> t -> unit
