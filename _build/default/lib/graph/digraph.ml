type t = { adjacency : int list array }

let make ~n ~edges =
  let adjacency = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (x, y) ->
      if x < 0 || x >= n || y < 0 || y >= n then invalid_arg "Digraph.make: node out of range";
      if x <> y && not (Hashtbl.mem seen (x, y)) then begin
        Hashtbl.add seen (x, y) ();
        adjacency.(x) <- y :: adjacency.(x)
      end)
    edges;
  { adjacency }

let num_nodes t = Array.length t.adjacency

let num_edges t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.adjacency

let succ t x = t.adjacency.(x)

let edges t =
  let acc = ref [] in
  Array.iteri (fun x ys -> List.iter (fun y -> acc := (x, y) :: !acc) ys) t.adjacency;
  !acc

let reverse t =
  let n = num_nodes t in
  let adjacency = Array.make n [] in
  Array.iteri
    (fun x ys -> List.iter (fun y -> adjacency.(y) <- x :: adjacency.(y)) ys)
    t.adjacency;
  { adjacency }

let reachable_from_set t roots =
  let n = num_nodes t in
  let seen = Bitset.create n in
  let rec visit x =
    if not (Bitset.mem seen x) then begin
      Bitset.add seen x;
      List.iter visit t.adjacency.(x)
    end
  in
  List.iter visit roots;
  seen

let reachable t root = reachable_from_set t [ root ]
