open Lbr_logic
open Syntax

let reduce vars program phi =
  let keep v = Assignment.mem v phi in
  let reduce_method (c : cls) (m : meth) =
    if not (keep (Vars.meth vars ~c:c.c_name ~m:m.m_name)) then None
    else if keep (Vars.code vars ~c:c.c_name ~m:m.m_name) then Some m
    else Some { m with m_body = stub_body m }
  in
  let reduce_decl decl =
    match decl with
    | Class c ->
        if not (keep (Vars.cls vars c.c_name)) then None
        else
          let iface =
            match Vars.impl_opt vars ~c:c.c_name with
            | Some v when keep v -> c.c_iface
            | Some _ -> empty_interface_name
            | None -> c.c_iface (* already EmptyInterface *)
          in
          Some
            (Class
               {
                 c with
                 c_iface = iface;
                 c_methods = List.filter_map (reduce_method c) c.c_methods;
               })
    | Interface i ->
        if not (keep (Vars.cls vars i.i_name)) then None
        else
          Some
            (Interface
               {
                 i with
                 i_sigs =
                   List.filter
                     (fun (s : signature) -> keep (Vars.sig_ vars ~i:i.i_name ~m:s.s_name))
                     i.i_sigs;
               })
  in
  { program with decls = List.filter_map reduce_decl program.decls }

let size program =
  List.fold_left
    (fun acc decl ->
      match decl with
      | Class c ->
          let impl = if c.c_iface <> empty_interface_name then 1 else 0 in
          acc + 1 + impl + (2 * List.length c.c_methods)
      | Interface i -> acc + 1 + List.length i.i_sigs)
    0 program.decls
