open Lbr_logic

type t = { pool : Var.Pool.t; all : Assignment.t; impls : (string, Var.t) Hashtbl.t }

let cls_name c = c
let impl_name c i = Printf.sprintf "%s<%s" c i
let meth_name c m = Printf.sprintf "%s.%s()" c m
let code_name c m = Printf.sprintf "%s.%s()!code" c m
let sig_name i m = Printf.sprintf "%s.%s()" i m

let derive pool (program : Syntax.program) =
  let vars = ref [] in
  let impls = Hashtbl.create 16 in
  let register name =
    let v = Var.Pool.fresh pool name in
    vars := v :: !vars;
    v
  in
  List.iter
    (fun decl ->
      match decl with
      | Syntax.Class c ->
          ignore (register (cls_name c.c_name));
          if c.c_iface <> Syntax.empty_interface_name then
            Hashtbl.add impls c.c_name (register (impl_name c.c_name c.c_iface));
          List.iter
            (fun (m : Syntax.meth) ->
              ignore (register (meth_name c.c_name m.m_name));
              ignore (register (code_name c.c_name m.m_name)))
            c.c_methods
      | Syntax.Interface i ->
          ignore (register (cls_name i.i_name));
          List.iter
            (fun (s : Syntax.signature) -> ignore (register (sig_name i.i_name s.s_name)))
            i.i_sigs)
    program.decls;
  { pool; all = Assignment.of_list !vars; impls }

let pool t = t.pool

let all t = t.all

let lookup t name =
  match Var.Pool.find t.pool name with
  | Some v -> v
  | None -> raise Not_found

let cls t name =
  if Syntax.is_builtin name then raise Not_found else lookup t (cls_name name)

let cls_formula t name =
  if Syntax.is_builtin name then Formula.True else Formula.var (lookup t (cls_name name))

let impl t ~c =
  match Hashtbl.find_opt t.impls c with Some v -> v | None -> raise Not_found

let impl_opt t ~c = Hashtbl.find_opt t.impls c

let meth t ~c ~m = lookup t (meth_name c m)

let code t ~c ~m = lookup t (code_name c m)

let sig_ t ~i ~m = lookup t (sig_name i m)

let name_of t v = Var.Pool.name t.pool v
