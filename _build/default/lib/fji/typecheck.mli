(** FJI type checking and constraint generation (Figures 6 and 7).

    [⊢ P | π] simultaneously type checks the program and produces the
    propositional formula [π] over [V(P)] modelling its internal
    dependencies.  Theorem 3.1: if [⊢ P | π] and [φ ⊨ π] then
    [reduce(P, φ)] type checks — which the test suite validates by
    property testing. *)

type error = { context : string; message : string }

val pp_error : Format.formatter -> error -> unit

val check : Syntax.program -> (unit, error) result
(** Plain type checking, used on reduced programs. *)

val generate : Vars.t -> Syntax.program -> (Lbr_logic.Formula.t, error) result
(** Type check and generate the dependency formula.  The [Vars.t] must have
    been derived from the same program. *)
