lib/fji/pretty.ml: Format List Syntax
