lib/fji/reduce.mli: Assignment Lbr_logic Syntax Vars
