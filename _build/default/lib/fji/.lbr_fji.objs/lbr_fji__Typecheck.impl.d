lib/fji/typecheck.ml: Format Formula Lbr_logic List Printf Syntax Vars
