lib/fji/reduce.ml: Assignment Lbr_logic List Syntax Vars
