lib/fji/vars.mli: Assignment Formula Lbr_logic Syntax Var
