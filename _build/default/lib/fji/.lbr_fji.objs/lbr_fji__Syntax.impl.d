lib/fji/syntax.ml: List Printf
