lib/fji/typecheck.mli: Format Lbr_logic Syntax Vars
