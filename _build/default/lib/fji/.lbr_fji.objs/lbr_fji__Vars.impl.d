lib/fji/vars.ml: Assignment Formula Hashtbl Lbr_logic List Printf Syntax Var
