lib/fji/example.ml: Assignment Clause Cnf Format Formula Lbr_logic List Syntax Typecheck Var Vars
