lib/fji/pretty.mli: Format Syntax
