lib/fji/example.mli: Assignment Cnf Lbr_logic Syntax Var Vars
