lib/fji/syntax.mli:
