type type_name = string

type expr =
  | Var of string
  | Field of expr * string
  | Call of expr * string * expr list
  | New of type_name * expr list
  | Cast of type_name * expr

type meth = {
  m_ret : type_name;
  m_name : string;
  m_params : (type_name * string) list;
  m_body : expr;
}

type signature = {
  s_ret : type_name;
  s_name : string;
  s_params : (type_name * string) list;
}

type cls = {
  c_name : type_name;
  c_super : type_name;
  c_iface : type_name;
  c_fields : (type_name * string) list;
  c_methods : meth list;
}

type iface = { i_name : type_name; i_sigs : signature list }

type decl = Class of cls | Interface of iface

type program = { decls : decl list; main : expr option }

let object_name = "Object"
let empty_interface_name = "EmptyInterface"
let string_name = "String"

let is_builtin name =
  name = object_name || name = empty_interface_name || name = string_name

let decl_name = function Class c -> c.c_name | Interface i -> i.i_name

let find_class program name =
  if name = string_name || name = object_name then
    (* Built-in classes have no fields or methods. *)
    Some { c_name = name; c_super = object_name; c_iface = empty_interface_name;
           c_fields = []; c_methods = [] }
  else
    List.find_map
      (function Class c when c.c_name = name -> Some c | Class _ | Interface _ -> None)
      program.decls

let find_iface program name =
  if name = empty_interface_name then Some { i_name = name; i_sigs = [] }
  else
    List.find_map
      (function Interface i when i.i_name = name -> Some i | Class _ | Interface _ -> None)
      program.decls

let class_names program =
  List.filter_map
    (function Class c -> Some c.c_name | Interface _ -> None)
    program.decls

let iface_names program =
  List.filter_map
    (function Interface i -> Some i.i_name | Class _ -> None)
    program.decls

let find_method cls name = List.find_opt (fun m -> m.m_name = name) cls.c_methods

let find_signature iface name = List.find_opt (fun s -> s.s_name = name) iface.i_sigs

let stub_body m = Call (Var "this", m.m_name, List.map (fun (_, x) -> Var x) m.m_params)

let wf_names program =
  let rec check seen = function
    | [] -> Ok ()
    | d :: rest ->
        let name = decl_name d in
        if is_builtin name then Error (Printf.sprintf "declaration shadows built-in %s" name)
        else if List.mem name seen then Error (Printf.sprintf "duplicate declaration %s" name)
        else check (name :: seen) rest
  in
  check [] program.decls
