open Syntax

let rec pp_expr ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Field (e, f) -> Format.fprintf ppf "%a.%s" pp_expr e f
  | Call (e, m, args) -> Format.fprintf ppf "%a.%s(%a)" pp_expr e m pp_args args
  | New (c, args) -> Format.fprintf ppf "new %s(%a)" c pp_args args
  | Cast (t, e) -> Format.fprintf ppf "(%s) %a" t pp_expr e

and pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    pp_expr ppf args

let pp_params ppf params =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf (t, x) -> Format.fprintf ppf "%s %s" t x)
    ppf params

let pp_method ppf (m : meth) =
  Format.fprintf ppf "@[<hv 2>%s %s(%a) {@ return %a;@;<1 -2>}@]" m.m_ret m.m_name pp_params
    m.m_params pp_expr m.m_body

let pp_signature ppf (s : signature) =
  Format.fprintf ppf "%s %s(%a);" s.s_ret s.s_name pp_params s.s_params

let pp_decl ppf = function
  | Class c ->
      let header =
        let extends = if c.c_super = object_name then "" else " extends " ^ c.c_super in
        let implements =
          if c.c_iface = empty_interface_name then "" else " implements " ^ c.c_iface
        in
        Format.sprintf "class %s%s%s" c.c_name extends implements
      in
      Format.fprintf ppf "@[<v 2>%s {" header;
      List.iter (fun (t, f) -> Format.fprintf ppf "@ %s %s;" t f) c.c_fields;
      List.iter (fun m -> Format.fprintf ppf "@ %a" pp_method m) c.c_methods;
      Format.fprintf ppf "@;<1 -2>}@]"
  | Interface i ->
      Format.fprintf ppf "@[<v 2>interface %s {" i.i_name;
      List.iter (fun s -> Format.fprintf ppf "@ %a" pp_signature s) i.i_sigs;
      Format.fprintf ppf "@;<1 -2>}@]"

let pp_program ppf (p : program) =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decl ppf p.decls;
  match p.main with
  | None -> ()
  | Some e -> Format.fprintf ppf "@ // main@ %a" pp_expr e

let program_to_string p = Format.asprintf "@[<v>%a@]" pp_program p
