open Lbr_logic
open Syntax

let figure1 () =
  let string_new = New (string_name, []) in
  let a =
    Class
      {
        c_name = "A";
        c_super = object_name;
        c_iface = "I";
        c_fields = [];
        c_methods =
          [
            { m_ret = string_name; m_name = "m"; m_params = []; m_body = string_new };
            { m_ret = "B"; m_name = "n"; m_params = []; m_body = New ("B", []) };
          ];
      }
  in
  let b =
    Class
      {
        c_name = "B";
        c_super = object_name;
        c_iface = "I";
        c_fields = [];
        c_methods =
          [
            { m_ret = string_name; m_name = "m"; m_params = []; m_body = string_new };
            { m_ret = "B"; m_name = "n"; m_params = []; m_body = New ("B", []) };
          ];
      }
  in
  let i =
    Interface
      {
        i_name = "I";
        i_sigs =
          [
            { s_ret = string_name; s_name = "m"; s_params = [] };
            { s_ret = "B"; s_name = "n"; s_params = [] };
          ];
      }
  in
  let m =
    Class
      {
        c_name = "M";
        c_super = object_name;
        c_iface = empty_interface_name;
        c_fields = [];
        c_methods =
          [
            {
              m_ret = string_name;
              m_name = "x";
              m_params = [ ("I", "a") ];
              m_body = Call (Var "a", "m", []);
            };
            {
              m_ret = string_name;
              m_name = "main";
              m_params = [];
              m_body = Call (New ("M", []), "x", [ New ("A", []) ]);
            };
          ];
      }
  in
  { decls = [ a; b; i; m ]; main = None }

type model = {
  pool : Var.Pool.t;
  vars : Vars.t;
  program : Syntax.program;
  constraints : Cnf.t;
  required : Assignment.t;
}

let model () =
  let pool = Var.Pool.create () in
  let program = figure1 () in
  let vars = Vars.derive pool program in
  let formula =
    match Typecheck.generate vars program with
    | Ok f -> f
    | Error e -> invalid_arg (Format.asprintf "Example.model: %a" Typecheck.pp_error e)
  in
  let required = Assignment.singleton (Vars.code vars ~c:"M" ~m:"main") in
  let constraints =
    Cnf.add_clause (Formula.to_cnf formula)
      (Clause.unit_pos (Vars.code vars ~c:"M" ~m:"main"))
  in
  { pool; vars; program; constraints; required }

let figure2_cnf vars =
  let cls c = Vars.cls vars c in
  let impl c = Vars.impl vars ~c in
  let meth c m = Vars.meth vars ~c ~m in
  let code c m = Vars.code vars ~c ~m in
  let sg i m = Vars.sig_ vars ~i ~m in
  let edge x y = Clause.edge x y in
  let syntactic =
    [
      edge (code "A" "n") (meth "A" "n");
      edge (meth "A" "n") (cls "A");
      edge (code "A" "m") (meth "A" "m");
      edge (meth "A" "m") (cls "A");
      edge (code "B" "n") (meth "B" "n");
      edge (meth "B" "n") (cls "B");
      edge (code "B" "m") (meth "B" "m");
      edge (meth "B" "m") (cls "B");
      edge (impl "A") (cls "A");
      edge (impl "B") (cls "B");
      edge (sg "I" "m") (cls "I");
      edge (sg "I" "n") (cls "I");
      edge (code "M" "x") (meth "M" "x");
      edge (meth "M" "x") (cls "M");
      edge (code "M" "main") (meth "M" "main");
      edge (meth "M" "main") (cls "M");
    ]
  in
  let referential =
    [
      edge (impl "A") (cls "I");
      edge (impl "B") (cls "I");
      edge (meth "A" "n") (cls "B");
      edge (meth "B" "n") (cls "B");
      edge (sg "I" "n") (cls "B");
      edge (meth "M" "x") (cls "I");
      edge (code "M" "x") (sg "I" "m");
      edge (code "M" "x") (cls "I");
      edge (code "M" "main") (meth "M" "x");
      edge (code "M" "main") (cls "A");
      edge (code "M" "main") (cls "M");
    ]
  in
  let non_referential =
    [
      Clause.make_exn ~neg:[ impl "A"; sg "I" "m" ] ~pos:[ meth "A" "m" ];
      Clause.make_exn ~neg:[ impl "A"; sg "I" "n" ] ~pos:[ meth "A" "n" ];
      Clause.make_exn ~neg:[ impl "B"; sg "I" "m" ] ~pos:[ meth "B" "m" ];
      Clause.make_exn ~neg:[ impl "B"; sg "I" "n" ] ~pos:[ meth "B" "n" ];
      edge (code "M" "main") (impl "A");
      Clause.unit_pos (code "M" "main");
    ]
  in
  Cnf.make (syntactic @ referential @ non_referential)

let buggy vars phi =
  List.for_all
    (fun (c, m) -> Assignment.mem (Vars.code vars ~c ~m) phi)
    [ ("A", "m"); ("M", "x"); ("M", "main") ]

let optimal vars =
  Assignment.of_list
    [
      Vars.impl vars ~c:"A";
      Vars.meth vars ~c:"A" ~m:"m";
      Vars.code vars ~c:"A" ~m:"m";
      Vars.cls vars "A";
      Vars.sig_ vars ~i:"I" ~m:"m";
      Vars.cls vars "I";
      Vars.code vars ~c:"M" ~m:"x";
      Vars.meth vars ~c:"M" ~m:"x";
      Vars.code vars ~c:"M" ~m:"main";
      Vars.meth vars ~c:"M" ~m:"main";
      Vars.cls vars "M";
    ]
