(** The FJI reducer (Figure 5).

    Given a truth assignment [φ] over [V(P)], [reduce] maps the program to
    its sub-program: classes and interfaces with an unset variable are
    removed; a class whose [\[C ◁ I\]] is unset falls back to implementing
    [EmptyInterface]; a method whose [\[C.m()!code\]] is unset but whose
    [\[C.m()\]] is set keeps its declaration with the trivial body
    [return this.m(x̄);]; signatures follow [\[I.m()\]]. *)

open Lbr_logic

val reduce : Vars.t -> Syntax.program -> Assignment.t -> Syntax.program

val size : Syntax.program -> int
(** A simple size metric: the number of reducible items present (classes,
    implements relations, methods, bodies, signatures). *)
