(** The paper's running example (Figures 1 and 2).

    The input program of Figure 1a: classes [A], [B], [M] and interface [I];
    the tool under test fails exactly when the bodies of [A.m()], [M.x()]
    and [M.main()] are all present.  Reduction should find Figure 1b: keep
    [A], [A ◁ I], [I], [I.m()], [A.m()] with code, and all of [M]. *)

open Lbr_logic

val figure1 : unit -> Syntax.program
(** The input program (Figure 1a). *)

type model = {
  pool : Var.Pool.t;
  vars : Vars.t;
  program : Syntax.program;
  constraints : Cnf.t;  (** the generated dependency model *)
  required : Assignment.t;  (** the [\[M.main()!code\]] requirement *)
}

val model : unit -> model
(** Derive [V(P)] (20 variables) and generate the constraints of Figure 2
    from the type rules, conjoined with the required [\[M.main()!code\]]. *)

val figure2_cnf : Vars.t -> Cnf.t
(** The 32 constraints of Figure 2, hand-transcribed from the paper
    (including the required [\[M.main()!code\]] unit).  Used by tests to
    cross-check the generated model. *)

val buggy : Vars.t -> Assignment.t -> bool
(** The black-box predicate: the tool fails iff the bodies of [A.m()],
    [M.x()] and [M.main()] are all in the sub-input. *)

val optimal : Vars.t -> Assignment.t
(** The 11-variable optimal solution quoted in §2. *)
