(** Featherweight Java with Interfaces (FJI) — syntax (Figure 4).

    FJI extends Featherweight Java with single-interface implementation:
    every class declares [extends D implements I] and every interface is a
    set of method signatures.  Constructors are the canonical FJ form and
    are synthesised from the field lists, so they are not represented.

    Three type names are built in and never reduced: [Object] (the root
    class), [EmptyInterface] (the empty interface every reduced class can
    fall back to), and [String] (a stand-in for library classes that the
    example programs mention but reduction must preserve). *)

type type_name = string

type expr =
  | Var of string  (** variable reference, including [this] *)
  | Field of expr * string  (** [e.f] *)
  | Call of expr * string * expr list  (** [e.m(ē)] *)
  | New of type_name * expr list  (** [new C(ē)] *)
  | Cast of type_name * expr  (** [(T) e] *)

type meth = {
  m_ret : type_name;
  m_name : string;
  m_params : (type_name * string) list;
  m_body : expr;
}

type signature = {
  s_ret : type_name;
  s_name : string;
  s_params : (type_name * string) list;
}

type cls = {
  c_name : type_name;
  c_super : type_name;
  c_iface : type_name;  (** the single implemented interface *)
  c_fields : (type_name * string) list;
  c_methods : meth list;
}

type iface = { i_name : type_name; i_sigs : signature list }

type decl = Class of cls | Interface of iface

type program = { decls : decl list; main : expr option }
(** [main] is the program's expression [e] in [P ::= R̄ e]; [None] models
    inputs that are just a set of declarations (e.g. bytecode fed to a
    tool), as in the paper's running example. *)

val object_name : type_name
val empty_interface_name : type_name
val string_name : type_name

val is_builtin : type_name -> bool

val find_class : program -> type_name -> cls option
val find_iface : program -> type_name -> iface option

val decl_name : decl -> type_name

val class_names : program -> type_name list
val iface_names : program -> type_name list

val find_method : cls -> string -> meth option
val find_signature : iface -> string -> signature option

val stub_body : meth -> expr
(** The trivial body substituted by the reducer when a method is kept but its
    code is removed: [return this.m(x̄);], which always type checks in place
    of the original body. *)

val wf_names : program -> (unit, string) result
(** Basic well-formedness: declaration names are unique and do not collide
    with the built-ins. *)
