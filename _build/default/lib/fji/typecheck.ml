open Lbr_logic
open Syntax

type error = { context : string; message : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.context e.message

exception Fail of error

let fail context fmt = Format.kasprintf (fun message -> raise (Fail { context; message })) fmt

(* Environment threading the program and, when generating constraints, the
   variable table.  With [vars = None] every variable formula is [⊤], which
   degenerates constraint generation into plain type checking. *)
type env = { program : program; vars : Vars.t option }

let v_cls env t = match env.vars with None -> Formula.True | Some vs -> Vars.cls_formula vs t

let v_impl env (c : cls) =
  match env.vars with
  | None -> Formula.True
  | Some vs -> (
      match Vars.impl_opt vs ~c:c.c_name with
      | Some v -> Formula.var v
      | None -> Formula.True (* implements EmptyInterface: nothing to toggle *))

let v_meth env c m =
  match env.vars with None -> Formula.True | Some vs -> Formula.var (Vars.meth vs ~c ~m)

let v_code env c m =
  match env.vars with None -> Formula.True | Some vs -> Formula.var (Vars.code vs ~c ~m)

let v_sig env i m =
  match env.vars with None -> Formula.True | Some vs -> Formula.var (Vars.sig_ vs ~i ~m)

(* ------------------------------------------------------------------ *)
(* Type name resolution                                               *)

type kind = Kclass of cls | Kiface of iface

let resolve env ctx t =
  match find_class env.program t with
  | Some c -> Kclass c
  | None -> (
      match find_iface env.program t with
      | Some i -> Kiface i
      | None -> fail ctx "unknown type %s" t)

let resolve_class env ctx t =
  match resolve env ctx t with
  | Kclass c -> c
  | Kiface _ -> fail ctx "%s is an interface where a class is required" t

(* ------------------------------------------------------------------ *)
(* Helper rules (Figure 6)                                            *)

(* fields(P, C): inherited first, cycle-checked. *)
let fields env ctx c =
  let rec go seen c =
    if c = object_name then []
    else if List.mem c seen then fail ctx "cyclic class hierarchy through %s" c
    else
      let cls = resolve_class env ctx c in
      go (c :: seen) cls.c_super @ cls.c_fields
  in
  go [] c

let param_types params = List.map fst params

(* mtype(P, m, T) *)
let mtype env ctx m t =
  let rec in_class seen c =
    if c = object_name then None
    else if List.mem c seen then fail ctx "cyclic class hierarchy through %s" c
    else
      let cls = resolve_class env ctx c in
      match find_method cls m with
      | Some meth -> Some (param_types meth.m_params, meth.m_ret)
      | None -> in_class (c :: seen) cls.c_super
  in
  match resolve env ctx t with
  | Kclass _ -> in_class [] t
  | Kiface i -> (
      match find_signature i m with
      | Some s -> Some (param_types s.s_params, s.s_ret)
      | None -> None)

(* mAny(P, m, T): the disjunction of method variables that can witness that
   the reduced program still lets T answer m. *)
let many env ctx m t =
  let rec in_class seen c =
    if c = object_name then []
    else if List.mem c seen then fail ctx "cyclic class hierarchy through %s" c
    else
      let cls = resolve_class env ctx c in
      let rest = in_class (c :: seen) cls.c_super in
      match find_method cls m with
      | Some _ when is_builtin c -> Formula.True :: rest
      | Some _ -> v_meth env c m :: rest
      | None -> rest
  in
  match resolve env ctx t with
  | Kclass _ -> Formula.disj (in_class [] t)
  | Kiface i -> (
      match find_signature i m with
      | Some _ -> v_sig env t m
      | None -> Formula.False)

(* Subtyping: [subtype env t t'] is [Some π] when [P ⊢ t ≤ t' | π]. *)
let subtype env ctx t t' =
  let rec go seen t =
    if t = t' then Some Formula.True
    else if t = object_name || List.mem t seen then None
    else
      match resolve env ctx t with
      | Kiface _ -> None
      | Kclass cls -> (
          match go (t :: seen) cls.c_super with
          | Some f -> Some f
          | None ->
              if cls.c_iface = t' then Some (v_impl env cls)
              else None)
  in
  go [] t

let require_subtype env ctx t t' =
  match subtype env ctx t t' with
  | Some f -> f
  | None -> fail ctx "%s is not a subtype of %s" t t'

(* Valid method overriding. *)
let check_override env ctx m super (params, ret) =
  match mtype env ctx m super with
  | None -> ()
  | Some (params', ret') ->
      if params <> params' || ret <> ret' then
        fail ctx "invalid override of %s inherited from %s" m super

(* ------------------------------------------------------------------ *)
(* Type rules (Figure 7)                                              *)

(* P, Γ ⊢ e : T | π *)
let rec type_expr env ctx gamma e =
  match e with
  | Var x -> (
      match List.assoc_opt x gamma with
      | Some t -> (t, Formula.True)
      | None -> fail ctx "unbound variable %s" x)
  | Field (e0, f) -> (
      let t0, pi0 = type_expr env ctx gamma e0 in
      let fs = fields env ctx t0 in
      match List.find_opt (fun (_, name) -> name = f) fs with
      | Some (tf, _) -> (tf, pi0)
      | None -> fail ctx "class %s has no field %s" t0 f)
  | Call (e0, m, args) -> (
      let t0, pi0 = type_expr env ctx gamma e0 in
      match mtype env ctx m t0 with
      | None -> fail ctx "type %s has no method %s" t0 m
      | Some (param_tys, ret) ->
          if List.length args <> List.length param_tys then
            fail ctx "wrong number of arguments to %s.%s" t0 m;
          let arg_pis =
            List.map2
              (fun arg expected ->
                let targ, pi = type_expr env ctx gamma arg in
                Formula.conj [ pi; require_subtype env ctx targ expected ])
              args param_tys
          in
          (ret, Formula.conj (v_cls env t0 :: pi0 :: many env ctx m t0 :: arg_pis)))
  | New (c, args) ->
      let _ = resolve_class env ctx c in
      let fs = fields env ctx c in
      if List.length args <> List.length fs then
        fail ctx "wrong number of constructor arguments for %s" c;
      let arg_pis =
        List.map2
          (fun arg (expected, _) ->
            let targ, pi = type_expr env ctx gamma arg in
            Formula.conj [ pi; require_subtype env ctx targ expected ])
          args fs
      in
      (c, Formula.conj (v_cls env c :: arg_pis))
  | Cast (t, e0) ->
      let u, pi0 = type_expr env ctx gamma e0 in
      let _ = resolve env ctx t in
      let rel =
        (* Up- and downcasts are both allowed; either way the cast creates a
           dependency on the subtype relation it exercises (cf. the
           [M.main()!code] ⇒ [A ◁ I] discussion in §2). *)
        match subtype env ctx u t with
        | Some f -> f
        | None -> (
            match subtype env ctx t u with
            | Some f -> f
            | None -> fail ctx "cast between unrelated types %s and %s" u t)
      in
      (t, Formula.conj [ v_cls env t; pi0; rel ])

(* P ⊢ M OK in C | π *)
let type_method env (cls : cls) (m : meth) =
  let ctx = Printf.sprintf "%s.%s()" cls.c_name m.m_name in
  check_override env ctx m.m_name cls.c_super (param_types m.m_params, m.m_ret);
  let gamma = ("this", cls.c_name) :: List.map (fun (t, x) -> (x, t)) m.m_params in
  let u, pi1 = type_expr env ctx gamma m.m_body in
  let pi2 = require_subtype env ctx u m.m_ret in
  let decl_deps =
    Formula.conj (v_cls env cls.c_name :: v_cls env m.m_ret :: List.map (v_cls env) (param_types m.m_params))
  in
  Formula.conj
    [
      Formula.imply (v_meth env cls.c_name m.m_name) decl_deps;
      Formula.imply
        (v_code env cls.c_name m.m_name)
        (Formula.conj [ v_meth env cls.c_name m.m_name; pi1; pi2 ]);
    ]

(* P ⊢ S OK in I | π *)
let type_signature env (i : iface) (s : signature) =
  Formula.imply
    (v_sig env i.i_name s.s_name)
    (Formula.conj
       (v_cls env i.i_name :: v_cls env s.s_ret :: List.map (v_cls env) (param_types s.s_params)))

(* P ⊢ S OK in I for C | π *)
let type_signature_for_class env (cls : cls) (i : iface) (s : signature) =
  let ctx = Printf.sprintf "%s implements %s.%s()" cls.c_name i.i_name s.s_name in
  (match mtype env ctx s.s_name cls.c_name with
  | None -> fail ctx "class %s does not implement %s" cls.c_name s.s_name
  | Some (params, ret) ->
      if params <> param_types s.s_params || ret <> s.s_ret then
        fail ctx "class %s implements %s at a different type" cls.c_name s.s_name);
  Formula.imply
    (Formula.conj [ v_impl env cls; v_sig env i.i_name s.s_name ])
    (many env ctx s.s_name cls.c_name)

(* R OK in P | π *)
let type_decl env decl =
  match decl with
  | Interface i -> Formula.conj (List.map (type_signature env i) i.i_sigs)
  | Class cls ->
      let ctx = Printf.sprintf "class %s" cls.c_name in
      let _ = resolve_class env ctx cls.c_super in
      let iface =
        match find_iface env.program cls.c_iface with
        | Some i -> i
        | None -> fail ctx "unknown interface %s" cls.c_iface
      in
      (* The constructor's parameter types are the inherited and own field
         types; keeping C requires them all, and the superclass. *)
      let ctor_types = List.map fst (fields env ctx cls.c_name) in
      let class_deps =
        Formula.imply (v_cls env cls.c_name)
          (Formula.conj (v_cls env cls.c_super :: List.map (v_cls env) ctor_types))
      in
      let impl_deps =
        (* Only a real implements relation generates the
           [C ◁ I] ⇒ [C] ∧ [I] dependency; the EmptyInterface fallback has
           no variable to toggle. *)
        match env.vars with
        | None -> Formula.True
        | Some vs -> (
            match Vars.impl_opt vs ~c:cls.c_name with
            | None -> Formula.True
            | Some v ->
                Formula.imply (Formula.var v)
                  (Formula.conj [ v_cls env cls.c_name; v_cls env cls.c_iface ]))
      in
      let methods = List.map (type_method env cls) cls.c_methods in
      let sigs = List.map (type_signature_for_class env cls iface) iface.i_sigs in
      Formula.conj ((class_deps :: impl_deps :: methods) @ sigs)

(* ⊢ P | π *)
let type_program env =
  (match wf_names env.program with Ok () -> () | Error m -> fail "program" "%s" m);
  let decls = List.map (type_decl env) env.program.decls in
  let main =
    match env.program.main with
    | None -> Formula.True
    | Some e ->
        let _, pi = type_expr env "main expression" [] e in
        pi
  in
  Formula.conj (decls @ [ main ])

let check program =
  match type_program { program; vars = None } with
  | _ -> Ok ()
  | exception Fail e -> Error e

let generate vars program =
  match type_program { program; vars = Some vars } with
  | pi -> Ok pi
  | exception Fail e -> Error e
