(** Java-like pretty printing of FJI programs, for examples and bug
    reports. *)

val pp_expr : Format.formatter -> Syntax.expr -> unit
val pp_program : Format.formatter -> Syntax.program -> unit
val program_to_string : Syntax.program -> string
