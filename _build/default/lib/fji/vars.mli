(** The Boolean variables [V(P)] derived from an FJI program.

    Six kinds of variables toggle program items: classes [\[C\]], interfaces
    [\[I\]], implements relations [\[C ◁ I\]], class methods [\[C.m()\]],
    method bodies [\[C.m()!code\]], and interface signatures [\[I.m()\]].
    Built-in types have no variables — constraint generation treats them as
    always-kept ([⊤]). *)

open Lbr_logic

type t

val derive : Var.Pool.t -> Syntax.program -> t
(** Register all of V(P) in the pool, in the program's declaration order
    (class, then its implements relation, then per method the method and its
    code; interfaces then their signatures).  This creation order is the
    default variable order [<] for reduction. *)

val pool : t -> Var.Pool.t

val all : t -> Assignment.t
(** The full variable set — the universe [I] of the reduction problem. *)

val cls : t -> Syntax.type_name -> Var.t
(** Variable of class or interface [T].  Raises [Not_found] for built-ins
    and unknown types. *)

val cls_formula : t -> Syntax.type_name -> Formula.t
(** [⊤] for built-ins, the class/interface variable otherwise. *)

val impl : t -> c:Syntax.type_name -> Var.t
(** The [\[C ◁ I\]] variable of class [C] (classes implementing
    [EmptyInterface] have none — raises [Not_found]). *)

val impl_opt : t -> c:Syntax.type_name -> Var.t option

val meth : t -> c:Syntax.type_name -> m:string -> Var.t
val code : t -> c:Syntax.type_name -> m:string -> Var.t
val sig_ : t -> i:Syntax.type_name -> m:string -> Var.t

val name_of : t -> Var.t -> string
