(** Benchmark corpus construction.

    Mirrors the paper's setup: a set of generated programs (NJR stand-ins)
    crossed with the three simulated decompilers; every (program, tool) pair
    on which the tool is buggy becomes one reduction instance.  The paper
    has 94 programs and 227 instances. *)

open Lbr_jvm

type benchmark = {
  bench_id : string;
  seed : int;
  pool : Classpool.t;
}

type instance = {
  instance_id : string;
  benchmark : benchmark;
  tool : Lbr_decompiler.Tool.t;
  baseline_errors : string list;  (** sorted; non-empty *)
}

val build : seed:int -> programs:int -> mean_classes:int -> benchmark list
(** Generate [programs] valid pools whose class counts follow a log-normal
    distribution with the given (geometric) mean. *)

val instances : benchmark list -> instance list
(** All (benchmark, tool) pairs where the tool is buggy. *)

type stats = {
  programs : int;
  instance_count : int;
  geo_classes : float;
  geo_bytes : float;
  geo_errors : float;
  geo_items : float;
  geo_clauses : float;
  mean_graph_fraction : float;
}

val stats : benchmark list -> instance list -> stats
(** The corpus statistics of §5 ("on average (geometric mean), those
    benchmarks have 184 classes, 285 KB, 9.2 errors, 2.9 k reducible items,
    8.7 k clauses, and 97.5 % edges"). *)
