lib/harness/stats.ml: Experiment Float List
