lib/harness/timeline.mli: Experiment
