lib/harness/timeline.ml: Experiment List Stats
