lib/harness/stats.mli: Experiment
