lib/harness/experiment.ml: Array Assignment Classfile Classpool Constraints Corpus Fun Hashtbl Jtype Jvars Lbr Lbr_baselines Lbr_decompiler Lbr_jvm Lbr_logic Lbr_sat List Reducer Size String Unix Var
