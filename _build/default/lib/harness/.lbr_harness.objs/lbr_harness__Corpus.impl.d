lib/harness/corpus.ml: Classpool Constraints Float Jvars Lbr_decompiler Lbr_jvm Lbr_logic Lbr_workload List Printf Random Size
