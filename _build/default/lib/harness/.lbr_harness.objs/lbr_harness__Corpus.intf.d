lib/harness/corpus.mli: Classpool Lbr_decompiler Lbr_jvm
