lib/harness/experiment.mli: Classpool Corpus Lbr_jvm
