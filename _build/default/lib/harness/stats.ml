let epsilon = 1e-9

let geomean = function
  | [] -> 0.0
  | xs ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log (max epsilon x)) 0.0 xs /. n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let cdf xs =
  let sorted = List.sort Float.compare xs in
  let n = float_of_int (List.length sorted) in
  List.mapi (fun i x -> (x, float_of_int (i + 1) /. n)) sorted

let fraction_below xs threshold =
  match xs with
  | [] -> 0.0
  | _ ->
      let below = List.length (List.filter (fun x -> x <= threshold) xs) in
      float_of_int below /. float_of_int (List.length xs)

let quantile xs q =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.quantile: empty"
  | sorted ->
      let n = List.length sorted in
      let idx = int_of_float (q *. float_of_int (n - 1)) in
      List.nth sorted (max 0 (min (n - 1) idx))

type summary = {
  count : int;
  geo_time : float;
  geo_class_ratio : float;
  geo_byte_ratio : float;
  geo_line_ratio : float;
  geo_runs : float;
}

let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b

let summarize (outcomes : Experiment.outcome list) =
  {
    count = List.length outcomes;
    geo_time = geomean (List.map (fun (o : Experiment.outcome) -> o.sim_time) outcomes);
    geo_class_ratio =
      geomean (List.map (fun (o : Experiment.outcome) -> ratio o.classes1 o.classes0) outcomes);
    geo_byte_ratio =
      geomean (List.map (fun (o : Experiment.outcome) -> ratio o.bytes1 o.bytes0) outcomes);
    geo_line_ratio =
      geomean (List.map (fun (o : Experiment.outcome) -> ratio o.lines1 o.lines0) outcomes);
    geo_runs =
      geomean (List.map (fun (o : Experiment.outcome) -> float_of_int o.predicate_runs) outcomes);
  }
