(** Reduction-over-time aggregation (Figure 8b).

    For a time budget [t], an outcome's best-so-far sizes are the last
    improvement recorded at simulated time ≤ [t] (the original sizes before
    the first improvement).  Figure 8b plots the mean reduction factor
    (how many times smaller) across all instances over time. *)

val best_at : Experiment.outcome -> float -> int * int
(** [(classes, bytes)] of the smallest failure-preserving sub-input found
    within the given simulated time. *)

val mean_factor_at :
  Experiment.outcome list -> float -> metric:[ `Classes | `Bytes ] -> float
(** Geometric-mean reduction factor (original / best-so-far) at a time. *)

val series :
  Experiment.outcome list ->
  times:float list ->
  metric:[ `Classes | `Bytes ] ->
  (float * float) list
(** The Figure 8b curve: [(time, mean factor)] points. *)
