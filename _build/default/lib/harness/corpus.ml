open Lbr_jvm

type benchmark = {
  bench_id : string;
  seed : int;
  pool : Classpool.t;
}

type instance = {
  instance_id : string;
  benchmark : benchmark;
  tool : Lbr_decompiler.Tool.t;
  baseline_errors : string list;
}

(* Box–Muller standard normal. *)
let gaussian rng =
  let u1 = max epsilon_float (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let build ~seed ~programs ~mean_classes =
  let rng = Random.State.make [| seed; 0xc0 |] in
  List.init programs (fun i ->
      let sigma = 0.45 in
      let classes =
        exp (log (float_of_int mean_classes) +. (sigma *. gaussian rng))
        |> int_of_float
        |> max 8
        |> min (4 * mean_classes)
      in
      let bench_seed = (seed * 10_000) + i in
      let profile = Lbr_workload.Generator.njr_profile ~classes in
      {
        bench_id = Printf.sprintf "b%03d" i;
        seed = bench_seed;
        pool = Lbr_workload.Generator.generate ~seed:bench_seed profile;
      })

let instances benchmarks =
  List.concat_map
    (fun bench ->
      List.filter_map
        (fun tool ->
          match Lbr_decompiler.Tool.errors tool bench.pool with
          | [] -> None
          | baseline_errors ->
              Some
                {
                  instance_id = Printf.sprintf "%s/%s" bench.bench_id tool.Lbr_decompiler.Tool.name;
                  benchmark = bench;
                  tool;
                  baseline_errors;
                })
        Lbr_decompiler.Tool.all)
    benchmarks

type stats = {
  programs : int;
  instance_count : int;
  geo_classes : float;
  geo_bytes : float;
  geo_errors : float;
  geo_items : float;
  geo_clauses : float;
  mean_graph_fraction : float;
}

let geomean = function
  | [] -> 0.0
  | xs ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log (max 1.0 x)) 0.0 xs /. n)

let stats benchmarks instance_list =
  let per_instance f = List.map f instance_list in
  let clause_stats =
    List.map
      (fun inst ->
        let vpool = Lbr_logic.Var.Pool.create () in
        let jv = Jvars.derive vpool inst.benchmark.pool in
        let cnf = Constraints.generate jv inst.benchmark.pool in
        (float_of_int (Lbr_logic.Cnf.num_clauses cnf), Lbr_logic.Cnf.graph_fraction cnf))
      instance_list
  in
  {
    programs = List.length benchmarks;
    instance_count = List.length instance_list;
    geo_classes = geomean (per_instance (fun i -> float_of_int (Size.classes i.benchmark.pool)));
    geo_bytes = geomean (per_instance (fun i -> float_of_int (Size.bytes i.benchmark.pool)));
    geo_errors = geomean (per_instance (fun i -> float_of_int (List.length i.baseline_errors)));
    geo_items = geomean (per_instance (fun i -> float_of_int (Size.items i.benchmark.pool)));
    geo_clauses = geomean (List.map fst clause_stats);
    mean_graph_fraction =
      (match clause_stats with
      | [] -> 1.0
      | _ ->
          List.fold_left (fun a (_, g) -> a +. g) 0.0 clause_stats
          /. float_of_int (List.length clause_stats));
  }
