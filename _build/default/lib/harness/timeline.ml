let best_at (o : Experiment.outcome) t =
  let rec go best = function
    | [] -> best
    | (time, c, b) :: rest -> if time <= t then go (c, b) rest else best
  in
  go (o.classes0, o.bytes0) o.timeline

let factor_at (o : Experiment.outcome) t ~metric =
  let c, b = best_at o t in
  match metric with
  | `Classes -> float_of_int o.classes0 /. float_of_int (max 1 c)
  | `Bytes -> float_of_int o.bytes0 /. float_of_int (max 1 b)

let mean_factor_at outcomes t ~metric =
  Stats.geomean (List.map (fun o -> factor_at o t ~metric) outcomes)

let series outcomes ~times ~metric =
  List.map (fun t -> (t, mean_factor_at outcomes t ~metric)) times
