(** Summary statistics for experiment outcomes. *)

val geomean : float list -> float
(** Geometric mean; values are clamped below at a small epsilon.  [0.] on
    the empty list. *)

val mean : float list -> float

val cdf : float list -> (float * float) list
(** Cumulative frequency: sorted [(value, fraction ≤ value)] pairs — the
    data behind Figure 8a. *)

val fraction_below : float list -> float -> float

val quantile : float list -> float -> float
(** [quantile xs q] with [q ∈ [0,1]]; raises [Invalid_argument] on empty
    input. *)

type summary = {
  count : int;
  geo_time : float;
  geo_class_ratio : float;  (** final/original, classes *)
  geo_byte_ratio : float;
  geo_line_ratio : float;
  geo_runs : float;
}

val summarize : Experiment.outcome list -> summary
