lib/workload/generator.ml: Array Classfile Classpool Jtype Lbr_jvm List Printf Random
