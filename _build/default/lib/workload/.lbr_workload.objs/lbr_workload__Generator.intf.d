lib/workload/generator.mli: Lbr_jvm
