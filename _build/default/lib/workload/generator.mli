(** Seeded generator of valid, NJR-shaped class pools.

    The paper's corpus comes from the NJR project: real Java programs with a
    geometric-mean size of 184 classes, 2.9 k reducible items and 8.7 k
    model clauses, of which 97.5 % are graph edges.  This generator produces
    pools with the same structural ingredients — interface hierarchies,
    abstract classes, inheritance chains, fields, overloaded constructors,
    virtual/interface/static calls, casts, reflection — at a configurable
    scale, and guarantees validity by construction (checked in tests).

    Everything is deterministic in the seed. *)

type profile = {
  classes : int;  (** number of internal classes (interfaces included) *)
  interface_fraction : float;
  abstract_fraction : float;  (** among non-interface classes *)
  subclass_probability : float;  (** chance a class extends a previous class *)
  implement_probability : float;  (** per candidate interface *)
  methods_per_class : int;  (** mean of a geometric-ish distribution *)
  fields_per_class : int;
  body_length : int;  (** mean instructions per body *)
  reflection_probability : float;  (** chance a body does reflection *)
  annotation_probability : float;
  inner_class_probability : float;
}

val default_profile : profile
(** A small-but-structured default (used by tests and examples). *)

val njr_profile : classes:int -> profile
(** The corpus profile, parameterised on class count so corpora can draw
    class counts from a log-normal distribution. *)

val generate : seed:int -> profile -> Lbr_jvm.Classpool.t
(** Generate a valid pool.  Class names are ["p%d/C%d"]-shaped so they never
    collide with the external ["java/"] namespace. *)
