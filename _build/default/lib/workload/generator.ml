open Lbr_jvm

type profile = {
  classes : int;
  interface_fraction : float;
  abstract_fraction : float;
  subclass_probability : float;
  implement_probability : float;
  methods_per_class : int;
  fields_per_class : int;
  body_length : int;
  reflection_probability : float;
  annotation_probability : float;
  inner_class_probability : float;
}

let default_profile =
  {
    classes = 24;
    interface_fraction = 0.2;
    abstract_fraction = 0.15;
    subclass_probability = 0.45;
    implement_probability = 0.25;
    methods_per_class = 3;
    fields_per_class = 2;
    body_length = 6;
    reflection_probability = 0.06;
    annotation_probability = 0.15;
    inner_class_probability = 0.1;
  }

let njr_profile ~classes = { default_profile with classes }

(* ------------------------------------------------------------------ *)

type iface_skel = {
  is_name : string;
  is_supers : string list;
  is_methods : string list;
}

type class_skel = {
  cs_name : string;
  cs_super : string;
  cs_ifaces : string list;
  cs_abstract : bool;
  mutable cs_fields : Classfile.field list;
  mutable cs_imethods : (string * Jtype.t list * Jtype.t) list;
  mutable cs_smethods : (string * Jtype.t list * Jtype.t) list;
  mutable cs_amethods : (string * Jtype.t list * Jtype.t) list;
  mutable cs_nctors : int;
  mutable cs_annotations : string list;
  mutable cs_inner : string list;
}

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let pick_opt rng = function [] -> None | xs -> Some (pick rng xs)

let flip rng p = Random.State.float rng 1.0 < p

(* A small non-negative count with the given mean (uniform on [0, 2·mean]). *)
let around rng mean = Random.State.int rng ((2 * max 0 mean) + 1)

(* References are organised in modules: classes live in fixed-size modules;
   a class refers to its own module, the shared base module (utilities), and
   its module's declared dependencies.  The module-dependency DAG is shallow,
   so per-class closures stay moderate — as in real layered programs —
   instead of chaining into the whole pool. *)
let module_size = 8

let generate ~seed profile =
  let rng = Random.State.make [| seed; 0x1bc |] in
  let n = max 3 profile.classes in
  let n_ifaces =
    min (n - 2) (max 1 (int_of_float (profile.interface_fraction *. float_of_int n)))
  in
  let n_classes = n - n_ifaces in
  let iface_name i = Printf.sprintf "api/I%d" i in
  (* One package per module: decompiler bugs cluster by package in practice,
     and the simulated tools use the package prefix the same way. *)
  let class_name c = Printf.sprintf "m%d/C%d" (c / module_size) c in

  (* Module structure: module 0 is the shared utility layer; every other
     module depends on it and on at most one random earlier module. *)
  let n_modules = (n_classes + module_size - 1) / module_size in
  let module_deps =
    Array.init n_modules (fun m ->
        if m = 0 then []
        else if m > 1 && flip rng 0.35 then [ 0; 1 + Random.State.int rng (m - 1) ]
        else [ 0 ])
  in
  let module_of ci = ci / module_size in
  let index_in_module m =
    let lo = m * module_size in
    let hi = min (n_classes - 1) (((m + 1) * module_size) - 1) in
    lo + Random.State.int rng (hi - lo + 1)
  in
  (* A class index a body of class [ci] may reference: mostly its own
     module, often the base module, sometimes a declared dependency. *)
  let local_class_index ci =
    let m = module_of ci in
    match Random.State.int rng 100 with
    | k when k < 60 -> index_in_module m
    | k when k < 85 -> index_in_module 0
    | _ -> (
        match module_deps.(m) with
        | [] -> index_in_module 0
        | deps -> index_in_module (pick rng deps))
  in
  let iface_near ci =
    let window = min n_ifaces 4 in
    let lo = (ci / module_size * 3) mod max 1 (n_ifaces - window + 1) in
    iface_name (lo + Random.State.int rng window)
  in
  let any_type_name ci =
    match Random.State.int rng 10 with
    | 0 -> Classfile.string_name
    | 1 | 2 -> iface_near ci
    | _ -> class_name (local_class_index ci)
  in
  let any_jtype ci =
    match Random.State.int rng 6 with
    | 0 -> Jtype.Int
    | 1 -> Jtype.Long
    | 2 -> Jtype.Bool
    | 3 -> Jtype.Array (Jtype.Ref (any_type_name ci))
    | _ -> Jtype.Ref (any_type_name ci)
  in
  let signature ci =
    let params = List.init (Random.State.int rng 3) (fun _ -> any_jtype ci) in
    let ret = if flip rng 0.4 then Jtype.Void else any_jtype ci in
    (params, ret)
  in

  (* --- Interfaces ------------------------------------------------- *)
  let ifaces =
    Array.init n_ifaces (fun i ->
        let supers =
          List.init i iface_name
          |> List.filter (fun _ -> flip rng (profile.implement_probability /. 2.))
          |> fun l -> List.filteri (fun idx _ -> idx < 2) l
        in
        let n_methods = 1 + Random.State.int rng 2 in
        let methods = List.init n_methods (fun j -> Printf.sprintf "im%d_%d" i j) in
        { is_name = iface_name i; is_supers = supers; is_methods = methods })
  in
  let iface_index name =
    let rec find i = if ifaces.(i).is_name = name then i else find (i + 1) in
    find 0
  in
  (* Transitive abstract methods per interface, computed bottom-up so shared
     super-interfaces are not re-traversed exponentially. *)
  let iface_obligations_table =
    let table = Array.make n_ifaces [] in
    Array.iteri
      (fun i skel ->
        let inherited =
          List.concat_map (fun super -> table.(iface_index super)) skel.is_supers
        in
        table.(i) <- List.sort_uniq compare (skel.is_methods @ inherited))
      ifaces;
    table
  in
  let iface_obligations name = iface_obligations_table.(iface_index name) in

  (* --- Class skeletons -------------------------------------------- *)
  let skels =
    Array.init n_classes (fun c ->
        let super =
          (* Inheritance stays within the module (the first class of each
             module roots its hierarchy at Object), so extends edges never
             chain modules together. *)
          let module_lo = c / module_size * module_size in
          if c > module_lo && flip rng profile.subclass_probability then
            class_name (module_lo + Random.State.int rng (c - module_lo))
          else Classfile.object_name
        in
        let ifaces_chosen =
          (* 0–3 distinct interfaces per class, independent of how many
             interfaces the program declares. *)
          let count =
            match Random.State.float rng 1.0 with
            | x when x < 0.45 -> 0
            | x when x < 0.78 -> 1
            | x when x < 0.93 -> 2
            | _ -> 3
          in
          let count = min count n_ifaces in
          (* Each module works against a small window of the interface
             space (its "API layer"), so keeping a module keeps only a few
             interfaces. *)
          let window = min n_ifaces 4 in
          let lo = (c / module_size * 3) mod max 1 (n_ifaces - window + 1) in
          let rec draw acc k attempts =
            if k = 0 || attempts > 20 then acc
            else
              let candidate = iface_name (lo + Random.State.int rng window) in
              if List.mem candidate acc then draw acc k (attempts + 1)
              else draw (candidate :: acc) (k - 1) attempts
          in
          draw [] count 0
        in
        {
          cs_name = class_name c;
          cs_super = super;
          cs_ifaces = ifaces_chosen;
          cs_abstract = flip rng profile.abstract_fraction;
          cs_fields = [];
          cs_imethods = [];
          cs_smethods = [];
          cs_amethods = [];
          cs_nctors = 1 + Random.State.int rng 2;
          cs_annotations = [];
          cs_inner = [];
        })
  in
  let class_index name =
    let rec find c = if skels.(c).cs_name = name then c else find (c + 1) in
    find 0
  in

  (* Members: fields, own methods, abstract obligations. *)
  let pending_abstract = Array.make n_classes [] in
  Array.iteri
    (fun c skel ->
      let n_fields = around rng profile.fields_per_class in
      skel.cs_fields <-
        List.init n_fields (fun j ->
            {
              Classfile.f_name = Printf.sprintf "f%d_%d" c j;
              f_type = any_jtype c;
              f_static = flip rng 0.2;
            });
      let n_methods = 1 + around rng (profile.methods_per_class - 1) in
      skel.cs_imethods <-
        List.init n_methods (fun j ->
            let params, ret = signature c in
            (Printf.sprintf "m%d_%d" c j, params, ret));
      if flip rng 0.5 then begin
        let params, ret = signature c in
        skel.cs_smethods <- [ (Printf.sprintf "s%d_0" c, params, ret) ]
      end;
      if skel.cs_abstract && flip rng 0.6 then begin
        let params, ret = signature c in
        skel.cs_amethods <- [ (Printf.sprintf "am%d_0" c, params, ret) ]
      end;
      let super_pending =
        if Classfile.is_external skel.cs_super then []
        else pending_abstract.(class_index skel.cs_super)
      in
      let iface_pending =
        List.concat_map iface_obligations skel.cs_ifaces
        |> List.map (fun name -> (name, ([], Jtype.Int)))
      in
      let obligations = List.sort_uniq compare (super_pending @ iface_pending) in
      if skel.cs_abstract then begin
        let implemented, still_pending =
          List.partition (fun _ -> flip rng 0.3) obligations
        in
        skel.cs_imethods <-
          skel.cs_imethods
          @ List.map (fun (name, (params, ret)) -> (name, params, ret)) implemented;
        pending_abstract.(c) <-
          still_pending
          @ List.map (fun (name, params, ret) -> (name, (params, ret))) skel.cs_amethods
      end
      else begin
        skel.cs_imethods <-
          skel.cs_imethods
          @ List.map (fun (name, (params, ret)) -> (name, params, ret)) obligations;
        pending_abstract.(c) <- []
      end;
      if flip rng profile.annotation_probability then
        skel.cs_annotations <- [ any_type_name c ];
      if flip rng profile.inner_class_probability then
        skel.cs_inner <- [ class_name (local_class_index c) ])
    skels;

  (* --- Body generation --------------------------------------------- *)
  let imethods_of c = List.map (fun (m, _, _) -> (skels.(c).cs_name, m)) skels.(c).cs_imethods in
  let smethods_of c = List.map (fun (m, _, _) -> (skels.(c).cs_name, m)) skels.(c).cs_smethods in
  let fields_of c =
    List.map (fun (f : Classfile.field) -> (skels.(c).cs_name, f.f_name)) skels.(c).cs_fields
  in
  let iface_methods =
    Array.to_list ifaces
    |> List.concat_map (fun i -> List.map (fun m -> (i.is_name, m)) i.is_methods)
  in
  (* Own supertype relations, for upcasts. *)
  let own_subtype_pairs c =
    let s = skels.(c) in
    let via_super =
      if Classfile.is_external s.cs_super then [] else [ (s.cs_name, s.cs_super) ]
    in
    via_super @ List.map (fun i -> (s.cs_name, i)) s.cs_ifaces
  in

  let gen_insn ci =
    match Random.State.int rng 100 with
    | k when k < 40 -> Classfile.Arith
    | k when k < 52 -> (
        match pick_opt rng (imethods_of (local_class_index ci)) with
        | Some (owner, meth) -> Classfile.Invoke_virtual { owner; meth }
        | None -> Classfile.Load_store)
    | k when k < 58 -> (
        let owner = iface_near ci in
        match List.filter (fun (o, _) -> o = owner) iface_methods with
        | [] -> Classfile.Arith
        | candidates ->
            let owner, meth = pick rng candidates in
            Classfile.Invoke_interface { owner; meth })
    | k when k < 63 -> (
        match pick_opt rng (smethods_of (local_class_index ci)) with
        | Some (owner, meth) -> Classfile.Invoke_static { owner; meth }
        | None -> Classfile.Load_store)
    | k when k < 71 -> (
        let target = local_class_index ci in
        let s = skels.(target) in
        if s.cs_abstract then Classfile.Arith
        else Classfile.New_instance { cls = s.cs_name; ctor = Random.State.int rng s.cs_nctors })
    | k when k < 78 -> (
        match pick_opt rng (fields_of (local_class_index ci)) with
        | Some (owner, field) ->
            if flip rng 0.4 then Classfile.Put_field { owner; field }
            else Classfile.Get_field { owner; field }
        | None -> Classfile.Load_store)
    | k when k < 84 -> Classfile.Check_cast (any_type_name ci)
    | k when k < 87 -> Classfile.Instance_of (any_type_name ci)
    | k when k < 93 -> (
        match pick_opt rng (own_subtype_pairs ci @ own_subtype_pairs (local_class_index ci)) with
        | Some (from_, to_) -> Classfile.Upcast { from_; to_ }
        | None -> Classfile.Arith)
    | _ -> Classfile.Load_store
  in
  let gen_body ci =
    let len = 1 + around rng (profile.body_length - 1) in
    let body = List.init len (fun _ -> gen_insn ci) in
    let body =
      if flip rng profile.reflection_probability then
        Classfile.Load_const_class (class_name (local_class_index ci)) :: body
      else body
    in
    body @ [ Classfile.Return_insn ]
  in

  (* --- Assemble class files ---------------------------------------- *)
  let iface_classes =
    Array.to_list ifaces
    |> List.map (fun i ->
           {
             Classfile.name = i.is_name;
             super = Classfile.object_name;
             interfaces = i.is_supers;
             is_interface = true;
             is_abstract = true;
             fields = [];
             methods =
               List.map
                 (fun m ->
                   {
                     Classfile.m_name = m;
                     m_params = [];
                     m_ret = Jtype.Int;
                     m_static = false;
                     m_abstract = true;
                     m_body = [];
                   })
                 i.is_methods;
             ctors = [];
             annotations = [];
             inner_classes = [];
           })
  in
  let plain_classes =
    Array.to_list skels
    |> List.mapi (fun ci s ->
           let imethods =
             List.map
               (fun (m, params, ret) ->
                 {
                   Classfile.m_name = m;
                   m_params = params;
                   m_ret = ret;
                   m_static = false;
                   m_abstract = false;
                   m_body = gen_body ci;
                 })
               s.cs_imethods
           in
           let smethods =
             List.map
               (fun (m, params, ret) ->
                 {
                   Classfile.m_name = m;
                   m_params = params;
                   m_ret = ret;
                   m_static = true;
                   m_abstract = false;
                   m_body = gen_body ci;
                 })
               s.cs_smethods
           in
           let amethods =
             List.map
               (fun (m, params, ret) ->
                 {
                   Classfile.m_name = m;
                   m_params = params;
                   m_ret = ret;
                   m_static = false;
                   m_abstract = true;
                   m_body = [];
                 })
               s.cs_amethods
           in
           let ctors =
             List.init s.cs_nctors (fun k ->
                 {
                   Classfile.k_params = List.init k (fun _ -> any_jtype ci);
                   k_body = gen_body ci;
                 })
           in
           {
             Classfile.name = s.cs_name;
             super = s.cs_super;
             interfaces = s.cs_ifaces;
             is_interface = false;
             is_abstract = s.cs_abstract;
             fields = s.cs_fields;
             methods = imethods @ smethods @ amethods;
             ctors;
             annotations = s.cs_annotations;
             inner_classes = s.cs_inner;
           })
  in
  Classpool.of_classes (iface_classes @ plain_classes)
