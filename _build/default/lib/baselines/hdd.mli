(** Hierarchical Delta Debugging (Misherghi and Su, ICSE 2006).

    HDD exploits the input's tree structure: it applies ddmin level by
    level, removing whole subtrees, which avoids the syntactically invalid
    sub-inputs that defeat flat ddmin.  It is the historical middle step
    between ddmin and the dependency-model reducers this library is about:
    it models nesting (the paper's "syntactic dependencies") but none of
    the referential or non-referential semantics. *)

type 'a tree = Node of 'a * 'a tree list

type outcome = Fail | Pass | Unresolved

type stats = { tests : int; levels : int }

val run : 'a tree -> test:('a tree -> outcome) -> 'a tree * stats
(** [run tree ~test] assumes [test tree = Fail] and greedily minimises the
    tree level by level: at each depth, ddmin is applied to the nodes of
    that depth (removing a node removes its subtree).  The root is never
    removed.  Returns the minimised tree. *)

val size : 'a tree -> int
(** Number of nodes. *)

val labels : 'a tree -> 'a list
(** Pre-order list of labels. *)
