(** The ddmin algorithm of Zeller and Hildebrandt, the baseline all input
    reducers descend from.

    ddmin works on a flat list of pieces and knows nothing about internal
    dependencies, so on inputs like Java bytecode most of its probes are
    invalid ("don't know" outcomes) and it plateaus early — which is the
    motivation for model-based reduction. *)

type outcome =
  | Fail  (** the failure still happens: the sub-input is interesting *)
  | Pass  (** the failure is gone *)
  | Unresolved  (** the sub-input is invalid: "don't know" *)

type stats = { tests : int }

val run : items:'a list -> test:('a list -> outcome) -> 'a list * stats
(** [run ~items ~test] returns a 1-minimal failing sub-list, assuming
    [test items = Fail].  Sub-lists preserve the original element order. *)
