(** Binary reduction over closures — the J-Reduce algorithm (Kalhauge and
    Palsberg, FSE 2019).

    The input is a list of closures of a dependency graph: sets with the
    property that the union of any sub-list is a valid sub-input.  The
    algorithm repeatedly binary-searches for the shortest failing prefix of
    the list and moves that prefix's last closure into the required set,
    mirroring GBR's main loop (GBR is its generalisation to logical
    constraints). *)

open Lbr_logic
open Lbr

type stats = {
  iterations : int;
  predicate_runs : int;
  predicate_queries : int;
}

val reduce :
  closures:Assignment.t list ->
  base:Assignment.t ->
  predicate:Predicate.t ->
  (Assignment.t * stats, [ `Predicate_inconsistent ]) result
(** [reduce ~closures ~base ~predicate] assumes
    [predicate (base ∪ ⋃ closures)] holds and returns a union of [base] and
    some closures that still satisfies the predicate.  Closures are tried
    smallest-first. *)

module Graph_encoding : sig
  val closures :
    num_vars:int ->
    edges:(Var.t * Var.t) list ->
    required:Var.t list ->
    Assignment.t * Assignment.t list
  (** [closures ~num_vars ~edges ~required] computes J-Reduce's steps 1–3:
      the base closure (everything reachable from the required variables)
      and the deduplicated list of per-node closures, smallest first. *)
end
