lib/baselines/binary_reduction.mli: Assignment Lbr Lbr_logic Predicate Var
