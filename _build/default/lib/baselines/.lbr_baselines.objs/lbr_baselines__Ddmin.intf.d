lib/baselines/ddmin.mli:
