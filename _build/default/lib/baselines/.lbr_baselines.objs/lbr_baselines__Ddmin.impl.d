lib/baselines/ddmin.ml: List
