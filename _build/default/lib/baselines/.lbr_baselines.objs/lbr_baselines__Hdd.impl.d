lib/baselines/hdd.ml: Ddmin List
