lib/baselines/binary_reduction.ml: Array Assignment Int Lbr Lbr_graph Lbr_logic List Predicate Set
