lib/baselines/hdd.mli:
