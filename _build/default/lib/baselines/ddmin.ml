type outcome = Fail | Pass | Unresolved

type stats = { tests : int }

(* Split [items] into [n] chunks of near-equal length. *)
let chunks items n =
  let len = List.length items in
  let base = len / n and extra = len mod n in
  let rec go acc i remaining =
    if i = n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take k xs acc' =
        if k = 0 then (List.rev acc', xs)
        else match xs with [] -> (List.rev acc', []) | x :: rest -> take (k - 1) rest (x :: acc')
      in
      let chunk, rest = take size remaining [] in
      go (chunk :: acc) (i + 1) rest
  in
  go [] 0 items

let complement_of items chunk =
  (* Chunks are contiguous slices, so physical membership is a safe and fast
     way to subtract one. *)
  List.filter (fun x -> not (List.memq x chunk)) items

let run ~items ~test =
  let tests = ref 0 in
  let check sub =
    incr tests;
    test sub
  in
  let rec dd items n =
    let len = List.length items in
    if len <= 1 then items
    else
      let parts = chunks items n in
      match List.find_opt (fun chunk -> chunk <> [] && check chunk = Fail) parts with
      | Some chunk -> dd chunk 2
      | None -> (
          let complements =
            if n = 2 then [] (* complements of halves are the other halves *)
            else List.map (complement_of items) parts
          in
          match
            List.find_opt
              (fun comp -> comp <> [] && List.length comp < len && check comp = Fail)
              complements
          with
          | Some comp -> dd comp (max (n - 1) 2)
          | None -> if n < len then dd items (min len (2 * n)) else items)
  in
  let result = dd items 2 in
  (result, { tests = !tests })
