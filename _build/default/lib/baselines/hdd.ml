type 'a tree = Node of 'a * 'a tree list

type outcome = Fail | Pass | Unresolved

let to_ddmin = function
  | Fail -> Ddmin.Fail
  | Pass -> Ddmin.Pass
  | Unresolved -> Ddmin.Unresolved

type stats = { tests : int; levels : int }

let rec size (Node (_, children)) = 1 + List.fold_left (fun a c -> a + size c) 0 children

let rec labels (Node (label, children)) = label :: List.concat_map labels children

let rec depth (Node (_, children)) =
  1 + List.fold_left (fun a c -> max a (depth c)) 0 children

(* Nodes are addressed by their paths (child-index lists from the root), so
   pruning works on immutable trees without auxiliary ids. *)
let nodes_at_level tree level =
  let rec go (Node (_, children)) path d acc =
    if d = level then List.rev path :: acc
    else
      List.fold_left
        (fun acc (i, child) -> go child (i :: path) (d + 1) acc)
        acc
        (List.mapi (fun i c -> (i, c)) children)
  in
  List.rev (go tree [] 0 [])

(* Remove every node whose path is in [removed] (and its subtree). *)
let prune tree removed =
  let rec go (Node (label, children)) path =
    let children =
      List.mapi (fun i c -> (i, c)) children
      |> List.filter_map (fun (i, child) ->
             let child_path = path @ [ i ] in
             if List.mem child_path removed then None else Some (go child child_path))
    in
    Node (label, children)
  in
  go tree []

let run tree ~test =
  let tests = ref 0 in
  let levels = ref 0 in
  let rec per_level tree level =
    if level >= depth tree then tree
    else begin
      incr levels;
      match nodes_at_level tree level with
      | [] -> per_level tree (level + 1)
      | nodes ->
          (* ddmin over "nodes to KEEP" at this level; removing the others. *)
          let test_keep kept =
            incr tests;
            let removed = List.filter (fun p -> not (List.memq p kept)) nodes in
            to_ddmin (test (prune tree removed))
          in
          let kept, _ = Ddmin.run ~items:nodes ~test:test_keep in
          let removed = List.filter (fun p -> not (List.memq p kept)) nodes in
          per_level (prune tree removed) (level + 1)
    end
  in
  let result = per_level tree 1 in
  (result, { tests = !tests; levels = !levels })
