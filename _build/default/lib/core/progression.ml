open Lbr_logic
open Lbr_sat

let r_plus cnf learned =
  Cnf.add_clauses cnf
    (List.map (fun l -> Clause.of_disjunction ~pos:(Assignment.to_list l)) learned)

(* Fast path: one incremental MSA engine per progression; each variable of
   the universe is propagated at most once in total. *)
let build_fast ~cnf ~order ~universe =
  match Msa.Engine.create cnf ~order ~universe with
  | Error `Conflict -> Error `Conflict
  | Ok engine ->
      let rec entries acc covered =
        let remaining = Assignment.diff universe covered in
        match Order.min_of order remaining with
        | None -> Ok (List.rev acc)
        | Some x -> (
            match Msa.Engine.assume engine x with
            | Error `Conflict -> Error `Conflict
            | Ok () ->
                let closure = Msa.Engine.true_set engine in
                let entry = Assignment.diff closure covered in
                entries (entry :: acc) closure)
      in
      let d0 = Msa.Engine.true_set engine in
      (* D₀ may be empty when nothing is required; the progression is still
         well-defined (its first prefix is the empty, valid sub-input). *)
      entries [ d0 ] d0

(* Slow path for formulas outside the implication fragment: rebuild each
   entry with the general MSA (DPLL fallback inside). *)
let build_slow ~cnf ~order ~universe =
  match Msa.compute cnf ~order ~universe ~required:Assignment.empty () with
  | None -> Error `Unsat
  | Some d0 ->
      let rec entries acc covered =
        let remaining = Assignment.diff universe covered in
        match Order.min_of order remaining with
        | None -> Ok (List.rev acc)
        | Some x -> (
            match
              Msa.compute cnf ~order ~universe
                ~required:(Assignment.add x covered)
                ()
            with
            | None -> Error `Unsat
            | Some closure ->
                let entry = Assignment.diff closure covered in
                entries (entry :: acc) (Assignment.union covered closure))
      in
      entries [ d0 ] d0

let build ~cnf ~order ~learned ~universe =
  let cnf = r_plus cnf learned in
  match build_fast ~cnf ~order ~universe with
  | Ok entries -> Ok entries
  | Error `Conflict -> build_slow ~cnf ~order ~universe

let prefix_unions entries =
  let arr = Array.of_list entries in
  let unions = Array.make (Array.length arr) Assignment.empty in
  Array.iteri
    (fun i d -> unions.(i) <- (if i = 0 then d else Assignment.union unions.(i - 1) d))
    arr;
  unions
