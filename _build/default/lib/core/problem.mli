(** Instances of the Input Reduction Problem (Definition 4.1).

    An instance is [(I, 𝒫, R_I)]: a set of variables [I] (the items of the
    original input), a black-box predicate [𝒫] over subsets of [I], and a
    CNF validity formula [R_I] over [I].  The problem assumes both [𝒫(I)]
    and [R_I(I)] hold and that [𝒫] is monotone on valid sub-inputs. *)

open Lbr_logic

type t = {
  pool : Var.Pool.t;  (** names for diagnostics *)
  universe : Assignment.t;  (** the variable set [I] *)
  constraints : Cnf.t;  (** the validity formula [R_I] *)
  predicate : Predicate.t;  (** the black box [𝒫] *)
}

val make :
  pool:Var.Pool.t ->
  universe:Assignment.t ->
  constraints:Cnf.t ->
  predicate:Predicate.t ->
  t

val validate : t -> (unit, string) result
(** Check the instance assumptions that are checkable: [R_I(I)] holds, the
    constraints mention only variables of [I], and [𝒫(I)] holds (this runs
    the predicate once). *)
