open Lbr_logic

type stats = {
  iterations : int;
  predicate_runs : int;
  predicate_queries : int;
  learned : Assignment.t list;
  progression_lengths : int list;
}

type error = [ `Unsat | `Predicate_inconsistent | `Invariant_violation of string ]

(* Lemma 4.3's checkable invariants for a freshly built progression. *)
let progression_violation ~cnf ~learned ~universe entries prefixes =
  let n = Array.length prefixes in
  if n = 0 then Some "empty progression"
  else if not (Assignment.equal prefixes.(n - 1) universe) then
    Some "prefix union does not cover the search space"
  else begin
    let entries = Array.of_list entries in
    let disjoint = ref None in
    Array.iteri
      (fun i di ->
        Array.iteri
          (fun j dj ->
            if i < j && not (Assignment.disjoint di dj) then
              disjoint := Some (Printf.sprintf "entries %d and %d overlap" i j))
          entries)
      entries;
    match !disjoint with
    | Some _ as v -> v
    | None ->
        let restricted = Cnf.restrict cnf ~keep:universe in
        let bad = ref None in
        Array.iteri
          (fun r prefix ->
            if !bad = None then
              if not (Cnf.holds restricted prefix) then
                bad := Some (Printf.sprintf "prefix %d violates R+ (INV-PRO)" r)
              else
                List.iteri
                  (fun k l ->
                    if Assignment.disjoint l prefix then
                      bad :=
                        Some
                          (Printf.sprintf "prefix %d misses learned set %d (INV-PRO)" r k))
                  learned)
          prefixes;
        !bad
  end

(* Smallest r in (lo, hi] such that P(prefix.(r)), given ¬P(prefix.(lo)) and
   P(prefix.(hi)) — the latter by INV-PRO: the full prefix union equals the
   current search space J, which satisfied the predicate. *)
let binary_search predicate prefixes ~lo ~hi =
  let rec go lo hi =
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if Predicate.run predicate prefixes.(mid) then go lo mid else go mid hi
  in
  go lo hi

let reduce ?(check_invariants = false) (problem : Problem.t) ~order =
  let predicate = problem.predicate in
  let runs0 = Predicate.runs predicate and queries0 = Predicate.queries predicate in
  let max_iterations = Assignment.cardinal problem.universe + 1 in
  let rec loop learned j iterations prog_lengths =
    if iterations > max_iterations then Error `Predicate_inconsistent
    else
      match
        Progression.build ~cnf:problem.constraints ~order ~learned ~universe:j
      with
      | Error `Unsat -> Error `Unsat
      | Ok entries -> (
          let prefixes = Progression.prefix_unions entries in
          match
            if check_invariants then
              progression_violation ~cnf:problem.constraints ~learned ~universe:j entries
                prefixes
            else None
          with
          | Some message -> Error (`Invariant_violation message)
          | None ->
          let n = Array.length prefixes in
          let prog_lengths = n :: prog_lengths in
          let head = prefixes.(0) in
          if Predicate.run predicate head then
            let stats =
              {
                iterations;
                predicate_runs = Predicate.runs predicate - runs0;
                predicate_queries = Predicate.queries predicate - queries0;
                learned = List.rev learned;
                progression_lengths = List.rev prog_lengths;
              }
            in
            Ok (head, stats)
          else if n = 1 then
            (* The head is the whole search space J, which satisfied the
               predicate when it became the search space: the predicate is
               not behaving like a function of its input. *)
            Error `Predicate_inconsistent
          else begin
            let r = binary_search predicate prefixes ~lo:0 ~hi:(n - 1) in
            let entries = Array.of_list entries in
            let learned = entries.(r) :: learned in
            loop learned prefixes.(r) (iterations + 1) prog_lengths
          end)
  in
  loop [] problem.universe 1 []
