open Lbr_logic

module AMap = Map.Make (struct
  type t = Assignment.t

  let compare = Assignment.compare
end)

type t = {
  name : string;
  black_box : Assignment.t -> bool;
  memoize : bool;
  mutable memo : bool AMap.t;
  mutable runs : int;
  mutable queries : int;
  mutable observers : (Assignment.t -> bool -> unit) list;
}

let make ?(name = "predicate") ?(memoize = true) black_box =
  { name; black_box; memoize; memo = AMap.empty; runs = 0; queries = 0; observers = [] }

let name t = t.name

let execute t input =
  t.runs <- t.runs + 1;
  let outcome = t.black_box input in
  List.iter (fun observe -> observe input outcome) t.observers;
  outcome

let run t input =
  t.queries <- t.queries + 1;
  if not t.memoize then execute t input
  else
    match AMap.find_opt input t.memo with
    | Some outcome -> outcome
    | None ->
        let outcome = execute t input in
        t.memo <- AMap.add input outcome t.memo;
        outcome

let runs t = t.runs

let queries t = t.queries

let reset t =
  t.memo <- AMap.empty;
  t.runs <- 0;
  t.queries <- 0

let on_check t observe = t.observers <- observe :: t.observers
