(** The [PROGRESSION] subroutine of Generalized Binary Reduction.

    [PROGRESSION_{R_I}(𝓛, J)] produces a non-empty list of disjoint subsets
    of [J] whose union is [J], such that every prefix union is a valid
    sub-input ([R_I] restricted to [J] holds on it) that overlaps every
    learned set in [𝓛] (invariant INV-PRO):

    {ul
    {- [R⁺ = R_I ∧ ⋀_{L∈𝓛}(⋁L)], with variables outside [J] set to false;}
    {- [D₀ = MSA_<(R⁺)];}
    {- [D_{k+1} = MSA_<(R⁺ ∧ x | D^∪_k = 1) ∖ D^∪_k] where
       [x = min_< (J ∖ D^∪_k)], until the union reaches [J].}} *)

open Lbr_logic
open Lbr_sat

val build :
  cnf:Cnf.t ->
  order:Order.t ->
  learned:Assignment.t list ->
  universe:Assignment.t ->
  (Assignment.t list, [ `Unsat ]) result
(** The progression for [R⁺] over [universe] ([J]).  [`Unsat] when even the
    fallback solver cannot satisfy [R⁺] within [J] — which contradicts
    GBR's invariants if the caller maintained them, so GBR surfaces it as an
    error rather than an impossible state. *)

val prefix_unions : Assignment.t list -> Assignment.t array
(** [prefix_unions d] is the array [D^∪] with
    [D^∪_r = D₀ ∪ … ∪ D_r]. *)
