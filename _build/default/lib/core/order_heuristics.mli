(** Variable-order heuristics for GBR.

    Theorem 4.5 (local minimality on graph constraints) holds when the total
    order [<] is "picked well".  {!closure_order} realises that premise:
    variables are ordered by the size of their dependency closure, so the
    MSA's tie-breaking always prefers the alternative with the fewest
    transitive requirements. *)

open Lbr_logic

val closure_order : Cnf.t -> universe:Assignment.t -> Lbr_sat.Order.t
(** Order by ascending closure size over the formula's graph edges
    (non-graph clauses are ignored for ranking), ties by identifier. *)
