open Lbr_logic

type pick = First_first | Last_last

let pick_of pick (arr : Var.t array) =
  match pick with First_first -> arr.(0) | Last_last -> arr.(Array.length arr - 1)

let encode cnf ~pick =
  let strengthen (c : Clause.t) =
    if Clause.is_graph c then c
    else if Array.length c.pos = 0 then
      invalid_arg "Lossy.encode: purely negative clause has no graph approximation"
    else
      let head = pick_of pick c.pos in
      if Array.length c.neg = 0 then Clause.unit_pos head
      else Clause.edge (pick_of pick c.neg) head
  in
  Cnf.make (List.map strengthen (Cnf.clauses cnf))

let to_graph cnf =
  List.fold_left
    (fun (edges, required) (c : Clause.t) ->
      match Clause.kind c with
      | Clause.Unit_pos -> (edges, c.pos.(0) :: required)
      | Clause.Edge -> ((c.neg.(0), c.pos.(0)) :: edges, required)
      | Clause.Unit_neg | Clause.Horn | Clause.General ->
          invalid_arg "Lossy.to_graph: clause is not a graph constraint")
    ([], []) (Cnf.clauses cnf)

let is_sound_strengthening ~original ~encoded m =
  (not (Cnf.holds encoded m)) || Cnf.holds original m
