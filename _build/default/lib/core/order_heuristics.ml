open Lbr_logic

(* Rank variables by the size of their forward closure over the formula's
   graph-constraint edges, ties broken by identifier.  With this order the
   MSA resolves every disjunctive choice towards the variable that drags in
   the fewest dependencies — the "pick < well" premise of Theorem 4.5, under
   which GBR's result on graph constraints is locally minimal. *)
let closure_order cnf ~universe =
  let max_var = Assignment.fold (fun v acc -> max v acc) universe (-1) in
  let n = max_var + 1 in
  let edges =
    Cnf.clauses cnf
    |> List.filter_map (fun (c : Clause.t) ->
           match Clause.kind c with
           | Clause.Edge when c.neg.(0) < n && c.pos.(0) < n -> Some (c.neg.(0), c.pos.(0))
           | Clause.Edge | Clause.Unit_pos | Clause.Unit_neg | Clause.Horn | Clause.General ->
               None)
  in
  let closures = Lbr_graph.Scc.all_closures (Lbr_graph.Digraph.make ~n ~edges) in
  let keyed =
    Assignment.to_list universe
    |> List.map (fun v -> (Lbr_graph.Bitset.cardinal closures.(v), v))
    |> List.sort compare
  in
  Lbr_sat.Order.of_list (List.map snd keyed)
