open Lbr_logic

type t = {
  pool : Var.Pool.t;
  universe : Assignment.t;
  constraints : Cnf.t;
  predicate : Predicate.t;
}

let make ~pool ~universe ~constraints ~predicate =
  { pool; universe; constraints; predicate }

let validate t =
  if not (Assignment.subset (Cnf.vars t.constraints) t.universe) then
    Error "constraints mention variables outside the universe I"
  else if not (Cnf.holds t.constraints t.universe) then
    Error "R_I(I) does not hold: the original input is not valid"
  else if not (Predicate.run t.predicate t.universe) then
    Error "P(I) does not hold: the original input does not induce the failure"
  else Ok ()
