(** The lossy encodings of §4.3.

    A non-graph clause [(⋀ᵢ₌₁ⁿ aᵢ) ⇒ (⋁ⱼ₌₁ᵐ bⱼ)] is approximated by the
    single graph constraint [a_{i'} ⇒ b_{j'}]: any solution of the
    strengthened formula is a solution of the original, so binary reduction
    over the resulting dependency graph still returns valid sub-inputs —
    merely suboptimal ones.  The paper evaluates the two corner choices. *)

open Lbr_logic

type pick =
  | First_first  (** [(i' = 1, j' = 1)]: the first premise and first head. *)
  | Last_last  (** [(i' = n, j' = m)]: the last premise and last head. *)

val encode : Cnf.t -> pick:pick -> Cnf.t
(** Strengthen every non-graph clause to a graph constraint.  Clause literal
    positions are taken in increasing variable order.  Raises
    [Invalid_argument] on clauses with an empty head (purely negative), which
    have no graph approximation. *)

val to_graph : Cnf.t -> (Var.t * Var.t) list * Var.t list
(** Split an all-graph CNF (e.g. the output of {!encode}) into its edges
    [x ⇒ y] and its required variables (unit-positive clauses).  Raises
    [Invalid_argument] if any clause is not a graph constraint. *)

val is_sound_strengthening : original:Cnf.t -> encoded:Cnf.t -> Assignment.t -> bool
(** [true] when the given assignment satisfying [encoded] also satisfies
    [original] — the soundness property of the encoding, used by tests. *)
