lib/core/gbr.mli: Assignment Lbr_logic Lbr_sat Order Problem
