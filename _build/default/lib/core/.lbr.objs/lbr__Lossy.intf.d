lib/core/lossy.mli: Assignment Cnf Lbr_logic Var
