lib/core/problem.ml: Assignment Cnf Lbr_logic Predicate Var
