lib/core/order_heuristics.ml: Array Assignment Clause Cnf Lbr_graph Lbr_logic Lbr_sat List
