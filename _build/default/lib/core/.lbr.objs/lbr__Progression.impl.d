lib/core/progression.ml: Array Assignment Clause Cnf Lbr_logic Lbr_sat List Msa Order
