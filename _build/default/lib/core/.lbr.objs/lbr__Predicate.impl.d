lib/core/predicate.ml: Assignment Lbr_logic List Map
