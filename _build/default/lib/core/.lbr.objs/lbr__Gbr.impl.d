lib/core/gbr.ml: Array Assignment Cnf Lbr_logic List Predicate Printf Problem Progression
