lib/core/order_heuristics.mli: Assignment Cnf Lbr_logic Lbr_sat
