lib/core/progression.mli: Assignment Cnf Lbr_logic Lbr_sat Order
