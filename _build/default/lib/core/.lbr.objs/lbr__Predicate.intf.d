lib/core/predicate.mli: Assignment Lbr_logic
