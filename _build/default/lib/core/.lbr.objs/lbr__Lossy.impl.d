lib/core/lossy.ml: Array Clause Cnf Lbr_logic List Var
