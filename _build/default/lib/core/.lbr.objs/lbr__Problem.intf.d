lib/core/problem.mli: Assignment Cnf Lbr_logic Predicate Var
