let max_var cnf =
  Assignment.fold (fun v acc -> max v acc) (Cnf.vars cnf) (-1)

let to_string ?num_vars cnf =
  let buf = Buffer.create 1024 in
  if Cnf.is_unsat cnf then begin
    Buffer.add_string buf "p cnf 1 1\n0\n";
    Buffer.contents buf
  end
  else begin
    let nv = match num_vars with Some n -> n | None -> max_var cnf + 1 in
    let clauses = Cnf.clauses cnf in
    Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" nv (List.length clauses));
    List.iter
      (fun (c : Clause.t) ->
        Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "-%d " (v + 1))) c.neg;
        Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%d " (v + 1))) c.pos;
        Buffer.add_string buf "0\n")
      clauses;
    Buffer.contents buf
  end

let of_string text =
  let tokens =
    String.split_on_char '\n' text
    |> List.filter (fun line -> not (String.length line > 0 && line.[0] = 'c'))
    |> List.concat_map (fun line ->
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> t <> ""))
  in
  match tokens with
  | "p" :: "cnf" :: _nv :: _nc :: rest ->
      let rec clauses acc current = function
        | [] ->
            if current = [] then Ok (List.rev acc)
            else Error "unterminated clause (missing 0)"
        | "0" :: rest ->
            let neg = List.filter_map (fun l -> if l < 0 then Some (-l - 1) else None) current in
            let pos = List.filter_map (fun l -> if l > 0 then Some (l - 1) else None) current in
            let acc = match Clause.make ~neg ~pos with Some c -> c :: acc | None -> acc in
            clauses acc [] rest
        | token :: rest -> (
            match int_of_string_opt token with
            | Some lit when lit <> 0 -> clauses acc (lit :: current) rest
            | Some _ | None -> Error (Printf.sprintf "bad literal %S" token))
      in
      Result.map Cnf.make (clauses [] [] rest)
  | _ -> Error "missing DIMACS header (p cnf <vars> <clauses>)"

let write_file path cnf =
  let oc = open_out path in
  output_string oc (to_string cnf);
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
