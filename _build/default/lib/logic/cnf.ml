type t = { clauses : Clause.t list; unsat : bool }

let make clauses =
  let unsat = List.exists Clause.is_empty clauses in
  { clauses = (if unsat then [] else clauses); unsat }

let of_clauses = make

let top = { clauses = []; unsat = false }

let clauses t = t.clauses

let is_unsat t = t.unsat

let conj a b =
  if a.unsat || b.unsat then { clauses = []; unsat = true }
  else { clauses = a.clauses @ b.clauses; unsat = false }

let add_clause t c =
  if t.unsat then t
  else if Clause.is_empty c then { clauses = []; unsat = true }
  else { t with clauses = c :: t.clauses }

let add_clauses t cs = List.fold_left add_clause t cs

let vars t =
  List.fold_left
    (fun acc (c : Clause.t) ->
      let acc = Array.fold_left (fun acc v -> Assignment.add v acc) acc c.neg in
      Array.fold_left (fun acc v -> Assignment.add v acc) acc c.pos)
    Assignment.empty t.clauses

let num_clauses t = List.length t.clauses

let holds t m =
  (not t.unsat)
  && List.for_all (fun c -> Clause.holds c ~true_set:(fun v -> Assignment.mem v m)) t.clauses

(* Shared worker for conditioning.  [sat_lit] decides whether a literal is
   made true by the substitution (satisfying the whole clause); [drop_lit]
   whether it is made false (and disappears from the clause). *)
let condition t ~sat_neg ~drop_neg ~sat_pos ~drop_pos =
  if t.unsat then t
  else
    let rec go acc = function
      | [] -> { clauses = acc; unsat = false }
      | (c : Clause.t) :: rest ->
          if Array.exists sat_neg c.neg || Array.exists sat_pos c.pos then go acc rest
          else
            let neg = Array.to_list c.neg |> List.filter (fun v -> not (drop_neg v)) in
            let pos = Array.to_list c.pos |> List.filter (fun v -> not (drop_pos v)) in
            if neg = [] && pos = [] then { clauses = []; unsat = true }
            else go (Clause.make_exn ~neg ~pos :: acc) rest
    in
    go [] t.clauses

let condition_true t x =
  let in_x v = Assignment.mem v x in
  (* x = 1: positive occurrences of x satisfy the clause; negative ones are
     falsified and dropped. *)
  condition t ~sat_neg:(fun _ -> false) ~drop_neg:in_x ~sat_pos:in_x ~drop_pos:(fun _ -> false)

let condition_false t x =
  let in_x v = Assignment.mem v x in
  (* x = 0: negative occurrences of x satisfy the clause; positive ones are
     falsified and dropped. *)
  condition t ~sat_neg:in_x ~drop_neg:(fun _ -> false) ~sat_pos:(fun _ -> false) ~drop_pos:in_x

let restrict t ~keep =
  let out v = not (Assignment.mem v keep) in
  condition t ~sat_neg:out ~drop_neg:(fun _ -> false) ~sat_pos:(fun _ -> false) ~drop_pos:out

type stats = {
  total : int;
  unit_pos : int;
  unit_neg : int;
  edges : int;
  horn : int;
  general : int;
}

let stats t =
  List.fold_left
    (fun s c ->
      let s = { s with total = s.total + 1 } in
      match Clause.kind c with
      | Clause.Unit_pos -> { s with unit_pos = s.unit_pos + 1 }
      | Clause.Unit_neg -> { s with unit_neg = s.unit_neg + 1 }
      | Clause.Edge -> { s with edges = s.edges + 1 }
      | Clause.Horn -> { s with horn = s.horn + 1 }
      | Clause.General -> { s with general = s.general + 1 })
    { total = 0; unit_pos = 0; unit_neg = 0; edges = 0; horn = 0; general = 0 }
    t.clauses

let graph_fraction t =
  let s = stats t in
  if s.total = 0 then 1.0
  else float_of_int (s.unit_pos + s.edges) /. float_of_int s.total

let pp pool ppf t =
  if t.unsat then Format.pp_print_string ppf "⊥"
  else
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (Clause.pp pool))
      t.clauses
