(** DIMACS CNF import/export.

    The paper counts models with sharpSAT; this module writes our CNF in the
    DIMACS format those tools consume (and reads it back), so a model can be
    handed to any off-the-shelf SAT or #SAT solver.  DIMACS variables are
    1-based: variable [v] is emitted as [v + 1]. *)

val to_string : ?num_vars:int -> Cnf.t -> string
(** Render as [p cnf <vars> <clauses>] followed by one zero-terminated
    clause per line.  [num_vars] defaults to the highest variable + 1.
    An unsatisfiable formula renders as the single empty clause. *)

val of_string : string -> (Cnf.t, string) result
(** Parse DIMACS text ([c] comment lines are skipped; clauses may span
    lines).  Tautological clauses are dropped, like {!Clause.make}. *)

val write_file : string -> Cnf.t -> unit
val read_file : string -> (Cnf.t, string) result
