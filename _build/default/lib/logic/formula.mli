(** Propositional formulas and their translation to CNF.

    This is the OCaml counterpart of the paper's Haskell eDSL: constraint
    generators (the FJI type rules, the bytecode model) build formulas with
    the combinators below and then lower them to {!Cnf.t} once.  The formula
    shapes produced by the models are shallow — implications whose premise is
    a conjunction of variables and whose conclusion is a small disjunction or
    conjunction — so the naive distribution performed by {!to_cnf} never
    explodes in practice. *)

type t =
  | True
  | False
  | Var of Var.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t

val var : Var.t -> t
val conj : t list -> t
val disj : t list -> t
val imply : t -> t -> t
val imply_all : t list -> t -> t
(** [imply_all premises conclusion] is [(⋀ premises) ⇒ conclusion]. *)

val to_cnf : t -> Cnf.t
(** Lower to CNF by negation normal form followed by distribution.  The
    translation is equivalence-preserving (no auxiliary variables are
    introduced), so model counts over the original variables are unchanged. *)

val eval : t -> Assignment.t -> bool
(** Evaluate under the assignment that maps exactly the given set to true. *)

val vars : t -> Assignment.t

val size : t -> int
(** Number of connectives and atoms, for diagnostics. *)

val pp : Var.Pool.t -> Format.formatter -> t -> unit
