(** Boolean variables with interned, human-readable names.

    A {!pool} owns the bijection between dense integer identifiers and the
    item names they stand for (e.g. ["A.m()!code"]).  All other structures in
    the library ({!Clause}, {!Cnf}, assignments) operate on the dense integer
    identifiers, which keeps the solver hot paths allocation-free; the pool is
    only consulted when printing or when building models from named items. *)

type t = int
(** A variable identifier, dense in [0 .. Pool.size - 1] for its pool. *)

module Pool : sig
  type var = t

  type t
  (** A mutable registry of variables. *)

  val create : unit -> t

  val fresh : t -> string -> var
  (** [fresh pool name] registers a new variable.  Names must be unique within
      the pool; reusing a name raises [Invalid_argument]. *)

  val intern : t -> string -> var
  (** [intern pool name] returns the existing variable called [name], or
      registers a fresh one. *)

  val find : t -> string -> var option
  (** Lookup by name. *)

  val name : t -> var -> string
  (** [name pool v] is the registered name of [v].  Raises [Invalid_argument]
      if [v] was not created by [pool]. *)

  val size : t -> int
  (** Number of registered variables. *)

  val all : t -> var list
  (** All variables in creation order — the default total order [<] used by
      the MSA procedure and GBR. *)
end

val pp : Pool.t -> Format.formatter -> t -> unit
(** Pretty-print a variable as [\[name\]], the notation used in the paper. *)
