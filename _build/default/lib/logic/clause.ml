type t = { neg : Var.t array; pos : Var.t array }

let sorted_unique vars =
  let arr = Array.of_list vars in
  Array.sort compare arr;
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    (* Count distinct elements, then copy them over. *)
    let distinct = ref 1 in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(i - 1) then incr distinct
    done;
    if !distinct = n then arr
    else begin
      let out = Array.make !distinct arr.(0) in
      let j = ref 0 in
      for i = 1 to n - 1 do
        if arr.(i) <> arr.(i - 1) then begin
          incr j;
          out.(!j) <- arr.(i)
        end
      done;
      out
    end
  end

let sorted_mem arr x =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) = x then true
      else if arr.(mid) < x then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length arr)

let make ~neg ~pos =
  let neg = sorted_unique neg and pos = sorted_unique pos in
  if Array.exists (sorted_mem pos) neg then None else Some { neg; pos }

let make_exn ~neg ~pos =
  match make ~neg ~pos with
  | Some c -> c
  | None -> invalid_arg "Clause.make_exn: tautology"

let unit_pos v = { neg = [||]; pos = [| v |] }

let edge x y =
  if x = y then invalid_arg "Clause.edge: self edge is a tautology";
  { neg = [| x |]; pos = [| y |] }

let of_disjunction ~pos = { neg = [||]; pos = sorted_unique pos }

type kind = Unit_pos | Unit_neg | Edge | Horn | General

let kind c =
  match Array.length c.neg, Array.length c.pos with
  | 0, 1 -> Unit_pos
  | 1, 0 -> Unit_neg
  | 1, 1 -> Edge
  | _, 1 -> Horn
  | _, _ -> General

let is_graph c = match kind c with Unit_pos | Edge -> true | Unit_neg | Horn | General -> false

let num_literals c = Array.length c.neg + Array.length c.pos

let is_empty c = num_literals c = 0

let holds c ~true_set =
  Array.exists true_set c.pos || Array.exists (fun v -> not (true_set v)) c.neg

let equal a b = a.neg = b.neg && a.pos = b.pos

let compare a b =
  let c = compare a.neg b.neg in
  if c <> 0 then c else compare a.pos b.pos

let pp pool ppf c =
  let pv = Var.pp pool in
  let plist sep ppf arr =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " %s " sep) pv ppf
      (Array.to_list arr)
  in
  match Array.length c.neg, Array.length c.pos with
  | 0, 0 -> Format.pp_print_string ppf "false"
  | 0, _ -> plist "∨" ppf c.pos
  | _, 0 -> Format.fprintf ppf "¬(%a)" (plist "∧") c.neg
  | _, _ -> Format.fprintf ppf "%a ⇒ %a" (plist "∧") c.neg (plist "∨") c.pos
