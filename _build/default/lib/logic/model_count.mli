(** Exact model counting (#SAT).

    The paper uses sharpSAT to count the valid sub-inputs of the Section 2
    example (6,766 of the 2²⁰ subsets).  This module provides an exact DPLL
    counter with unit propagation and connected-component decomposition —
    the two techniques that make sharpSAT-style counters fast — sufficient
    for the model sizes that appear in reduction problems' diagnostics. *)

val count : Cnf.t -> over:Var.t list -> int
(** [count r ~over] is the number of assignments to the variables [over]
    that satisfy [r].  Every variable occurring in [r] must be listed in
    [over]; variables of [over] not occurring in [r] are free and double the
    count.  Raises [Invalid_argument] if [r] mentions a variable outside
    [over] or if [over] contains duplicates. *)

val count_naive : Cnf.t -> over:Var.t list -> int
(** Reference implementation enumerating all 2^|over| assignments; intended
    for cross-checking in tests (keep |over| ≤ 20). *)
