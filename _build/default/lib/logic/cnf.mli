(** Formulas in conjunctive normal form, with the conditioning operations the
    paper's algorithms rely on.

    Conditioning ([R | X = 1] and [R | X = 0]) substitutes constants for
    variables and simplifies: satisfied clauses disappear, falsified literals
    are dropped, and producing the empty clause marks the formula
    unsatisfiable (observable via {!is_unsat}). *)

type t

val make : Clause.t list -> t
val of_clauses : Clause.t list -> t
(** Alias of {!make}. *)

val top : t
(** The empty conjunction (always true). *)

val clauses : t -> Clause.t list
(** The remaining clauses.  Empty list on an unsatisfiable formula does not
    mean true — check {!is_unsat} first. *)

val is_unsat : t -> bool
(** Whether simplification has derived the empty clause.  [false] does not
    imply satisfiability. *)

val conj : t -> t -> t
val add_clause : t -> Clause.t -> t
val add_clauses : t -> Clause.t list -> t

val vars : t -> Assignment.t
(** All variables occurring in the formula. *)

val num_clauses : t -> int

val holds : t -> Assignment.t -> bool
(** [holds r m] is the paper's [R(M)]: does the assignment that maps exactly
    [m] to true satisfy [r]?  [false] on unsatisfiable formulas. *)

val condition_true : t -> Assignment.t -> t
(** [condition_true r x] is [R | X = 1]. *)

val condition_false : t -> Assignment.t -> t
(** [condition_false r x] is [R | X = 0]. *)

val restrict : t -> keep:Assignment.t -> t
(** [restrict r ~keep] sets every variable of [r] outside [keep] to false —
    the restriction used to build [R⁺] in the progression subroutine. *)

(** Corpus statistics over the clause kinds (cf. the paper's "97.5 % edges"
    measurement). *)
type stats = {
  total : int;
  unit_pos : int;
  unit_neg : int;
  edges : int;
  horn : int;
  general : int;
}

val stats : t -> stats

val graph_fraction : t -> float
(** Fraction of clauses representable as graph constraints (unit-positive or
    edge); [1.0] on the empty formula. *)

val pp : Var.Pool.t -> Format.formatter -> t -> unit
