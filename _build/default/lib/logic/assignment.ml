module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let singleton = S.singleton
let of_list = S.of_list
let to_list = S.elements
let add = S.add
let remove = S.remove
let mem = S.mem
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let disjoint = S.disjoint
let cardinal = S.cardinal
let is_empty = S.is_empty
let equal = S.equal
let compare = S.compare
let fold = S.fold
let iter = S.iter
let exists = S.exists
let for_all = S.for_all
let filter = S.filter
let choose_opt = S.choose_opt

let min_by ~order s =
  S.fold
    (fun v best ->
      match best with
      | None -> Some v
      | Some b -> if order v < order b then Some v else best)
    s None

let union_all sets = List.fold_left S.union S.empty sets

let pp pool ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (Var.pp pool))
    (S.elements s)
