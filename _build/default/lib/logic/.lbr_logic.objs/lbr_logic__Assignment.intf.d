lib/logic/assignment.mli: Format Var
