lib/logic/var.ml: Array Format Hashtbl List Printf
