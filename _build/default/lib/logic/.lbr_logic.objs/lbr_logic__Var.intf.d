lib/logic/var.mli: Format
