lib/logic/cnf.mli: Assignment Clause Format Var
