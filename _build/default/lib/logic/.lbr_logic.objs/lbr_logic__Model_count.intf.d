lib/logic/model_count.mli: Cnf Var
