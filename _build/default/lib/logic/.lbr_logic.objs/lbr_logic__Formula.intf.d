lib/logic/formula.mli: Assignment Cnf Format Var
