lib/logic/cnf.ml: Array Assignment Clause Format List
