lib/logic/dimacs.mli: Cnf
