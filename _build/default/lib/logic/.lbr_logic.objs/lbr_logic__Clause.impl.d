lib/logic/clause.ml: Array Format Var
