lib/logic/clause.mli: Format Var
