lib/logic/assignment.ml: Format Int List Set Var
