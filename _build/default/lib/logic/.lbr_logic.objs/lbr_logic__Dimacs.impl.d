lib/logic/dimacs.ml: Array Assignment Buffer Clause Cnf List Printf Result String
