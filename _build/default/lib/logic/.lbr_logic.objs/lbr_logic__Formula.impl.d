lib/logic/formula.ml: Assignment Clause Cnf Format List Var
