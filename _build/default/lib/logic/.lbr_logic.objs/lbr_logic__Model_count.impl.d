lib/logic/model_count.ml: Array Assignment Clause Cnf Hashtbl Int List Option Set
