let check_universe cnf over =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg "Model_count: duplicate variable in ~over";
      Hashtbl.add seen v ())
    over;
  Assignment.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then
        invalid_arg "Model_count: formula mentions a variable outside ~over")
    (Cnf.vars cnf)

let pow2 n =
  if n < 0 || n > 61 then invalid_arg "Model_count: universe too large";
  1 lsl n

(* Working representation: clauses as (neg, pos) sorted-int-array pairs,
   mirroring Clause.t, but rebuilt as lists during conditioning. *)

let count_naive cnf ~over =
  check_universe cnf over;
  let vars = Array.of_list over in
  let n = Array.length vars in
  let total = pow2 n in
  let count = ref 0 in
  for mask = 0 to total - 1 do
    let m =
      Array.to_list vars
      |> List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
      |> Assignment.of_list
    in
    if Cnf.holds cnf m then incr count
  done;
  !count

(* The DPLL counter proper.  State is a list of clauses over the still-free
   variables; free variables not mentioned by any clause contribute a factor
   of two each. *)

module ISet = Set.Make (Int)

let clause_vars (c : Clause.t) =
  ISet.union (ISet.of_seq (Array.to_seq c.neg)) (ISet.of_seq (Array.to_seq c.pos))

(* Split clauses into connected components (clauses linked by shared
   variables), returning each component's clause list. *)
let components clauses =
  match clauses with
  | [] -> []
  | _ ->
      let arr = Array.of_list clauses in
      let n = Array.length arr in
      let parent = Array.init n (fun i -> i) in
      let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
      let union i j =
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      in
      let owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
      Array.iteri
        (fun i c ->
          ISet.iter
            (fun v ->
              match Hashtbl.find_opt owner v with
              | None -> Hashtbl.add owner v i
              | Some j -> union i j)
            (clause_vars c))
        arr;
      let buckets : (int, Clause.t list) Hashtbl.t = Hashtbl.create 8 in
      Array.iteri
        (fun i c ->
          let r = find i in
          let prev = Option.value ~default:[] (Hashtbl.find_opt buckets r) in
          Hashtbl.replace buckets r (c :: prev))
        arr;
      Hashtbl.fold (fun _ cs acc -> cs :: acc) buckets []

exception Conflict

(* Condition a clause list on [v = value]; raises [Conflict] when the empty
   clause appears. *)
let condition_var clauses v value =
  List.filter_map
    (fun (c : Clause.t) ->
      let sat =
        if value then Array.exists (Int.equal v) c.pos
        else Array.exists (Int.equal v) c.neg
      in
      if sat then None
      else
        let neg = Array.to_list c.neg |> List.filter (fun x -> x <> v) in
        let pos = Array.to_list c.pos |> List.filter (fun x -> x <> v) in
        if neg = [] && pos = [] then raise Conflict
        else Some (Clause.make_exn ~neg ~pos))
    clauses

(* Exhaust unit propagation; returns the simplified clauses and the number of
   variables fixed.  Raises [Conflict] on derived contradiction. *)
let rec propagate clauses fixed =
  let unit_lit =
    List.find_map
      (fun (c : Clause.t) ->
        match Array.length c.neg, Array.length c.pos with
        | 0, 1 -> Some (c.pos.(0), true)
        | 1, 0 -> Some (c.neg.(0), false)
        | _, _ -> None)
      clauses
  in
  match unit_lit with
  | None -> (clauses, fixed)
  | Some (v, value) -> propagate (condition_var clauses v value) (fixed + 1)

let rec count_component clauses nfree =
  match propagate clauses 0 with
  | exception Conflict -> 0
  | clauses, fixed ->
      let nfree = nfree - fixed in
      let cvars =
        List.fold_left (fun acc c -> ISet.union acc (clause_vars c)) ISet.empty clauses
      in
      let constrained = ISet.cardinal cvars in
      assert (constrained <= nfree);
      let free_factor = pow2 (nfree - constrained) in
      if clauses = [] then free_factor
      else
        let comps = components clauses in
        let product =
          List.fold_left
            (fun acc comp ->
              if acc = 0 then 0
              else
                let comp_vars =
                  List.fold_left
                    (fun s c -> ISet.union s (clause_vars c))
                    ISet.empty comp
                in
                let nv = ISet.cardinal comp_vars in
                (* Branch on the most frequent variable of the component. *)
                let freq : (int, int) Hashtbl.t = Hashtbl.create 16 in
                List.iter
                  (fun c ->
                    ISet.iter
                      (fun v ->
                        Hashtbl.replace freq v
                          (1 + Option.value ~default:0 (Hashtbl.find_opt freq v)))
                      (clause_vars c))
                  comp;
                let branch_var =
                  Hashtbl.fold
                    (fun v n best ->
                      match best with
                      | Some (_, bn) when bn >= n -> best
                      | _ -> Some (v, n))
                    freq None
                  |> Option.get |> fst
                in
                let with_true =
                  match condition_var comp branch_var true with
                  | exception Conflict -> 0
                  | cs -> count_component cs (nv - 1)
                in
                let with_false =
                  match condition_var comp branch_var false with
                  | exception Conflict -> 0
                  | cs -> count_component cs (nv - 1)
                in
                acc * (with_true + with_false))
            1 comps
        in
        free_factor * product

let count cnf ~over =
  check_universe cnf over;
  if Cnf.is_unsat cnf then 0
  else count_component (Cnf.clauses cnf) (List.length over)
