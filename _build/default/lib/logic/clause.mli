(** Disjunctive clauses in implication view.

    A clause [⋁ᵢ ¬nᵢ ∨ ⋁ⱼ pⱼ] is stored as its implication form
    [(⋀ᵢ nᵢ) ⇒ (⋁ⱼ pⱼ)]: [neg] holds the variables that occur negatively
    (the premise) and [pos] the variables that occur positively (the head).
    Both arrays are sorted, duplicate-free, and disjoint (a clause containing
    [x] and [¬x] is a tautology and is never constructed by {!make}). *)

type t = private { neg : Var.t array; pos : Var.t array }

val make : neg:Var.t list -> pos:Var.t list -> t option
(** Build a clause; [None] if the clause is a tautology (shares a variable
    between premise and head). *)

val make_exn : neg:Var.t list -> pos:Var.t list -> t
(** Like {!make} but raises [Invalid_argument] on tautologies. *)

val unit_pos : Var.t -> t
(** The clause requiring a single variable, e.g. the paper's [\[M\]]. *)

val edge : Var.t -> Var.t -> t
(** [edge x y] is the graph constraint [x ⇒ y]. *)

val of_disjunction : pos:Var.t list -> t
(** A purely positive clause [⋁ pⱼ] — the form conjoined for each learned set
    in GBR's [R⁺]. *)

(** Classification used for the corpus statistics (the paper reports 97.5 % of
    clauses being representable as graph edges). *)
type kind =
  | Unit_pos  (** [⇒ p]: a required variable. *)
  | Unit_neg  (** [n ⇒]: a forbidden variable. *)
  | Edge      (** [n ⇒ p]: exactly one positive and one negative literal. *)
  | Horn      (** [(⋀ n) ⇒ p] with ≥ 2 premises: definite but not an edge. *)
  | General   (** head with ≥ 2 disjuncts (or empty clause). *)

val kind : t -> kind

val is_graph : t -> bool
(** [true] on [Unit_pos] and [Edge] — clauses expressible in J-Reduce's
    dependency-graph language. *)

val num_literals : t -> int

val is_empty : t -> bool
(** The unsatisfiable empty clause. *)

val holds : t -> true_set:(Var.t -> bool) -> bool
(** [holds c ~true_set] evaluates [c] under the total assignment that maps
    exactly the variables satisfying [true_set] to true. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Var.Pool.t -> Format.formatter -> t -> unit
