type t = int

module Pool = struct
  type var = t

  type t = {
    mutable names : string array;  (* id -> name, first [size] slots used *)
    mutable size : int;
    index : (string, var) Hashtbl.t;
  }

  let create () = { names = Array.make 64 ""; size = 0; index = Hashtbl.create 64 }

  let grow pool =
    let cap = Array.length pool.names in
    if pool.size = cap then begin
      let names = Array.make (2 * cap) "" in
      Array.blit pool.names 0 names 0 cap;
      pool.names <- names
    end

  let fresh pool name =
    if Hashtbl.mem pool.index name then
      invalid_arg (Printf.sprintf "Var.Pool.fresh: duplicate name %S" name);
    grow pool;
    let v = pool.size in
    pool.names.(v) <- name;
    pool.size <- pool.size + 1;
    Hashtbl.add pool.index name v;
    v

  let find pool name = Hashtbl.find_opt pool.index name

  let intern pool name =
    match find pool name with Some v -> v | None -> fresh pool name

  let name pool v =
    if v < 0 || v >= pool.size then
      invalid_arg (Printf.sprintf "Var.Pool.name: unknown variable %d" v);
    pool.names.(v)

  let size pool = pool.size

  let all pool = List.init pool.size (fun i -> i)
end

let pp pool ppf v = Format.fprintf ppf "[%s]" (Pool.name pool v)
