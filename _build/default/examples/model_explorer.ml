(* Exploring dependency models directly with the logic API.

   Builds the §4.4 example — (a ∧ b ⇒ c) ∧ (c ⇒ b) — plus a small graph
   model, and shows the toolbox: satisfiability, model counting, minimal
   satisfying assignments under different variable orders, progressions,
   and the lossy graph encodings.

   Run with:  dune exec examples/model_explorer.exe *)

open Lbr_logic
open Lbr_sat

let show pool set =
  "{"
  ^ String.concat ", " (List.map (Var.Pool.name pool) (Assignment.to_list set))
  ^ "}"

let () =
  let pool = Var.Pool.create () in
  let a = Var.Pool.fresh pool "a"
  and b = Var.Pool.fresh pool "b"
  and c = Var.Pool.fresh pool "c" in
  let cnf =
    Cnf.make [ Clause.make_exn ~neg:[ a; b ] ~pos:[ c ]; Clause.edge c b ]
  in
  Printf.printf "model: (a ∧ b ⇒ c) ∧ (c ⇒ b)   — the §4.4 example\n";
  Printf.printf "satisfying assignments over {a,b,c}: %d of 8\n"
    (Model_count.count cnf ~over:[ a; b; c ]);

  (* MSA under two orders: the order determines the head picked for a
     triggered disjunction. *)
  let universe = Assignment.of_list [ a; b; c ] in
  List.iter
    (fun (label, order) ->
      match Msa.compute cnf ~order ~universe ~required:(Assignment.singleton b) () with
      | Some m -> Printf.printf "MSA with b required, order %-9s = %s\n" label (show pool m)
      | None -> print_endline "unsat")
    [ ("(a,b,c)", Order.of_list [ a; b; c ]); ("(c,b,a)", Order.of_list [ c; b; a ]) ];

  (* The suboptimality run from §4.4: P true iff b present; order (c,b,a)
     makes GBR return {b,c} although {b} suffices. *)
  let predicate = Lbr.Predicate.make (fun s -> Assignment.mem b s) in
  let problem = Lbr.Problem.make ~pool ~universe ~constraints:cnf ~predicate in
  (match Lbr.Gbr.reduce problem ~order:(Order.of_list [ c; b; a ]) with
  | Ok (result, _) ->
      Printf.printf "GBR with order (c,b,a): %s   (suboptimal: {b} is smaller)\n"
        (show pool result)
  | Error _ -> print_endline "GBR failed");
  Lbr.Predicate.reset predicate;
  (match Lbr.Gbr.reduce problem ~order:(Order.of_list [ b; c; a ]) with
  | Ok (result, _) ->
      Printf.printf "GBR with order (b,c,a): %s\n" (show pool result)
  | Error _ -> print_endline "GBR failed");

  (* Progressions: the valid-prefix decomposition GBR searches over. *)
  print_endline "\nprogression for the model (no learned sets):";
  (match
     Lbr.Progression.build ~cnf ~order:(Order.of_list [ a; b; c ]) ~learned:[] ~universe
   with
  | Ok entries ->
      List.iteri (fun i d -> Printf.printf "  D%d = %s\n" i (show pool d)) entries
  | Error `Unsat -> print_endline "unsat");

  (* Lossy encodings strengthen non-graph clauses into edges. *)
  print_endline "\nlossy encodings of (a ∧ b ⇒ c):";
  List.iter
    (fun (label, pick) ->
      let encoded = Lbr.Lossy.encode cnf ~pick in
      let edges, _ = Lbr.Lossy.to_graph encoded in
      Printf.printf "  %-12s edges: %s\n" label
        (String.concat ", "
           (List.map
              (fun (x, y) -> Var.Pool.name pool x ^ " ⇒ " ^ Var.Pool.name pool y)
              (List.sort compare edges))))
    [ ("first-first", Lbr.Lossy.First_first); ("last-last", Lbr.Lossy.Last_last) ];

  (* And the count of what each encoding rules out. *)
  List.iter
    (fun (label, pick) ->
      let encoded = Lbr.Lossy.encode cnf ~pick in
      Printf.printf "  %-12s keeps %d of the %d original models\n" label
        (Model_count.count encoded ~over:[ a; b; c ])
        (Model_count.count cnf ~over:[ a; b; c ]))
    [ ("first-first", Lbr.Lossy.First_first); ("last-last", Lbr.Lossy.Last_last) ]
