(* Debloating (§6 "Debloating"): the same machinery, a different black box.

   Given a test suite, define the predicate to be "all tests pass"; a
   reduction then yields a sub-application that preserves the behaviour the
   tests describe — a debloater in the style of Jax or JShrink.

   Our simulated test suite picks a handful of entry methods and "passes"
   when each entry still exists with its real body and the whole pool links
   (the checker accepts it).  GBR keeps exactly the entries' dependency
   closures and drops the rest.

   Run with:  dune exec examples/debloat.exe [seed] *)

open Lbr_logic
open Lbr_jvm

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 11 in
  let pool =
    Lbr_workload.Generator.generate ~seed (Lbr_workload.Generator.njr_profile ~classes:80)
  in
  let vpool = Var.Pool.create () in
  let jv = Jvars.derive vpool pool in
  let cnf = Constraints.generate jv pool in

  (* The "test suite": the first concrete method of every 10th class. *)
  let entries =
    Classpool.classes pool
    |> List.filteri (fun i _ -> i mod 10 = 0)
    |> List.filter_map (fun (c : Classfile.cls) ->
           List.find_opt (fun (m : Classfile.meth) -> not m.m_abstract) c.methods
           |> Option.map (fun (m : Classfile.meth) -> (c.name, m.m_name)))
  in
  Printf.printf "application: %d classes, %d bytes\n" (Size.classes pool) (Size.bytes pool);
  Printf.printf "test suite entry points (%d):\n" (List.length entries);
  List.iter (fun (c, m) -> Printf.printf "  %s.%s()\n" c m) entries;

  let tests_pass sub =
    Checker.is_valid sub
    && List.for_all
         (fun (cls, meth) ->
           match Classpool.find sub cls with
           | None -> false
           | Some c -> (
               match Classfile.find_method c meth with
               | Some m -> (not m.m_abstract) && m.m_body <> [ Classfile.Return_insn ]
               | None -> false))
         entries
  in
  let predicate =
    Lbr.Predicate.make ~name:"test-suite" (fun phi -> tests_pass (Reducer.apply jv pool phi))
  in
  let problem =
    Lbr.Problem.make ~pool:vpool ~universe:(Jvars.all jv) ~constraints:cnf ~predicate
  in
  match Lbr.Problem.validate problem with
  | Error e -> prerr_endline ("not reducible: " ^ e)
  | Ok () -> (
      match Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation vpool) with
      | Error _ -> prerr_endline "debloating failed"
      | Ok (solution, stats) ->
          let debloated = Reducer.apply jv pool solution in
          Printf.printf "\ndebloated: %d classes (%.1f%%), %d bytes (%.1f%%) — %d test-suite runs\n"
            (Size.classes debloated)
            (100. *. float_of_int (Size.classes debloated) /. float_of_int (Size.classes pool))
            (Size.bytes debloated)
            (100. *. float_of_int (Size.bytes debloated) /. float_of_int (Size.bytes pool))
            stats.predicate_runs;
          Printf.printf "tests still pass: %b\n" (tests_pass debloated);
          print_endline "\nkept classes:";
          List.iter
            (fun (c : Classfile.cls) -> Printf.printf "  %s\n" c.name)
            (Classpool.classes debloated))
