(* The paper's motivating workflow: a Java program makes a decompiler emit
   source that does not recompile, and we want a bug report small enough to
   read.

   We generate an NJR-shaped program, find a decompiler that is buggy on it,
   and reduce the class pool with both J-Reduce (class-granularity closures)
   and our logical reducer (GBR over the fine-grained dependency model),
   preserving the full compiler error message.

   Run with:  dune exec examples/decompiler_bug.exe [seed] *)

open Lbr_logic
open Lbr_jvm

let () =
  let seed = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2023 in
  (* A benchmark program and a decompiler that is buggy on it. *)
  let benchmarks = Lbr_harness.Corpus.build ~seed ~programs:4 ~mean_classes:60 in
  match Lbr_harness.Corpus.instances benchmarks with
  | [] -> prerr_endline "no buggy (program, decompiler) pair for this seed; try another"
  | instance :: _ ->
      let pool = instance.benchmark.pool in
      Printf.printf "program %s: %d classes, %d bytes, %d decompiled lines\n"
        instance.benchmark.bench_id (Size.classes pool) (Size.bytes pool)
        (Lbr_decompiler.Source.line_count pool);
      Printf.printf "decompiler %s fails to produce compilable output:\n"
        instance.tool.Lbr_decompiler.Tool.name;
      List.iter (fun m -> Printf.printf "  %s\n" m) instance.baseline_errors;

      (* Reduce with both strategies; the outcome records sizes, predicate
         runs and the simulated decompile+recompile clock. *)
      let describe (o : Lbr_harness.Experiment.outcome) =
        Printf.printf
          "%-10s kept %3d/%3d classes (%4.1f%%), %6d/%6d bytes (%4.1f%%), %4d lines — %d runs, %.0fs simulated\n"
          (Lbr_harness.Experiment.strategy_name o.strategy)
          o.classes1 o.classes0
          (100. *. float_of_int o.classes1 /. float_of_int o.classes0)
          o.bytes1 o.bytes0
          (100. *. float_of_int o.bytes1 /. float_of_int o.bytes0)
          o.lines1 o.predicate_runs o.sim_time
      in
      print_endline "\n=== reduction ===";
      let jr = Lbr_harness.Experiment.run Lbr_harness.Experiment.Jreduce instance in
      describe jr;
      let gbr = Lbr_harness.Experiment.run Lbr_harness.Experiment.Gbr instance in
      describe gbr;

      (* Show the final bug report: the decompiled output of the reduced
         pool, which still triggers every original error. *)
      let vpool = Var.Pool.create () in
      let jv = Jvars.derive vpool pool in
      let cnf = Constraints.generate jv pool in
      let predicate =
        Lbr.Predicate.make (fun phi ->
            let errors = Lbr_decompiler.Tool.errors instance.tool (Reducer.apply jv pool phi) in
            List.for_all (fun m -> List.mem m errors) instance.baseline_errors)
      in
      let problem =
        Lbr.Problem.make ~pool:vpool ~universe:(Jvars.all jv) ~constraints:cnf ~predicate
      in
      (match Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation vpool) with
      | Error _ -> prerr_endline "reduction failed"
      | Ok (solution, _) ->
          let reduced = Reducer.apply jv pool solution in
          Printf.printf "\n=== decompiled output of the reduced pool (%d lines) ===\n"
            (Lbr_decompiler.Source.line_count reduced);
          print_string (Lbr_decompiler.Source.decompile reduced);
          Printf.printf "\nerrors still reproduced:\n";
          List.iter (fun m -> Printf.printf "  %s\n" m)
            (Lbr_decompiler.Tool.errors instance.tool reduced))
