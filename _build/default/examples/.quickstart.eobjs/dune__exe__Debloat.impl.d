examples/debloat.ml: Array Checker Classfile Classpool Constraints Jvars Lbr Lbr_jvm Lbr_logic Lbr_sat Lbr_workload List Option Printf Reducer Size Sys Var
