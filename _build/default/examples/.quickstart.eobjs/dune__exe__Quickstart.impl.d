examples/quickstart.ml: Assignment Clause Cnf Format Lbr Lbr_fji Lbr_logic Lbr_sat List Model_count Printf Var
