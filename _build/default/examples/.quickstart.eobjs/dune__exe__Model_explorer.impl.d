examples/model_explorer.ml: Assignment Clause Cnf Lbr Lbr_logic Lbr_sat List Model_count Msa Order Printf String Var
