examples/debloat.mli:
