examples/decompiler_bug.mli:
