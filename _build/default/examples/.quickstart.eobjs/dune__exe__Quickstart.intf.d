examples/quickstart.mli:
