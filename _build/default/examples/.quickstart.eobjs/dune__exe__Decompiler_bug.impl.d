examples/decompiler_bug.ml: Array Constraints Jvars Lbr Lbr_decompiler Lbr_harness Lbr_jvm Lbr_logic Lbr_sat List Printf Reducer Size Sys Var
