(* Quickstart: the paper's running example, end to end.

   We model the Figure 1a program in Featherweight Java with Interfaces,
   derive its Boolean variables and dependency constraints from the type
   rules, define the black-box predicate ("the tool crashes when the bodies
   of A.m(), M.x() and M.main() are all present"), and let Generalized
   Binary Reduction find the smallest valid failure-inducing sub-program.

   Run with:  dune exec examples/quickstart.exe *)

open Lbr_logic

let () =
  (* 1. The input program (Figure 1a). *)
  let program = Lbr_fji.Example.figure1 () in
  print_endline "=== input program ===";
  print_endline (Lbr_fji.Pretty.program_to_string program);

  (* 2. Derive variables and generate the dependency model from the type
        rules (Section 3).  [Example.model] bundles these steps; the
        long-hand version is:

          let pool = Var.Pool.create () in
          let vars = Lbr_fji.Vars.derive pool program in
          let formula = Lbr_fji.Typecheck.generate vars program |> Result.get_ok in
          let cnf = Formula.to_cnf formula in *)
  let model = Lbr_fji.Example.model () in
  let universe = Lbr_fji.Vars.all model.vars in
  Printf.printf "\n%d variables, %d clauses\n"
    (Assignment.cardinal universe)
    (Cnf.num_clauses model.constraints);

  (* 3. Count the valid sub-inputs, like §2 does with sharpSAT. *)
  let dependency_model =
    Cnf.make
      (List.filter (fun c -> Clause.kind c <> Clause.Unit_pos) (Cnf.clauses model.constraints))
  in
  Printf.printf "valid sub-inputs: %d of %d subsets\n"
    (Model_count.count dependency_model ~over:(Assignment.to_list universe))
    (1 lsl Assignment.cardinal universe);

  (* 4. The black box: run the buggy tool on a sub-input. *)
  let predicate = Lbr.Predicate.make ~name:"buggy-tool" (Lbr_fji.Example.buggy model.vars) in

  (* 5. Reduce. *)
  let problem =
    Lbr.Problem.make ~pool:model.pool ~universe ~constraints:model.constraints ~predicate
  in
  (match Lbr.Problem.validate problem with
  | Ok () -> ()
  | Error e -> failwith e);
  let order = Lbr_sat.Order.by_creation model.pool in
  match Lbr.Gbr.reduce problem ~order with
  | Error _ -> prerr_endline "reduction failed"
  | Ok (solution, stats) ->
      Printf.printf "\nGBR kept %d of %d items using %d tool runs (%d iterations)\n"
        (Assignment.cardinal solution)
        (Assignment.cardinal universe)
        stats.predicate_runs stats.iterations;
      print_endline "kept items:";
      Assignment.iter
        (fun v -> Printf.printf "  [%s]\n" (Var.Pool.name model.pool v))
        solution;
      print_endline "\n=== reduced program (Figure 1b) ===";
      let reduced = Lbr_fji.Reduce.reduce model.vars model.program solution in
      print_endline (Lbr_fji.Pretty.program_to_string reduced);
      (* Theorem 3.1 in action: the reduced program still type checks. *)
      match Lbr_fji.Typecheck.check reduced with
      | Ok () -> print_endline "reduced program type checks ✓"
      | Error e -> Format.printf "unexpected type error: %a@." Lbr_fji.Typecheck.pp_error e
