(* Tests for bitsets, digraphs, Tarjan SCC, and closure tables. *)

let test_bitset_basics () =
  let s = Lbr_graph.Bitset.create 70 in
  Lbr_graph.Bitset.add s 0;
  Lbr_graph.Bitset.add s 63;
  Lbr_graph.Bitset.add s 69;
  Alcotest.(check bool) "mem 63" true (Lbr_graph.Bitset.mem s 63);
  Alcotest.(check bool) "not mem 5" false (Lbr_graph.Bitset.mem s 5);
  Alcotest.(check int) "cardinal" 3 (Lbr_graph.Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 0; 63; 69 ] (Lbr_graph.Bitset.to_list s)

let test_bitset_union_subset () =
  let a = Lbr_graph.Bitset.of_list 10 [ 1; 2 ] in
  let b = Lbr_graph.Bitset.of_list 10 [ 2; 7 ] in
  let c = Lbr_graph.Bitset.copy a in
  Lbr_graph.Bitset.union_into ~dst:c b;
  Alcotest.(check (list int)) "union" [ 1; 2; 7 ] (Lbr_graph.Bitset.to_list c);
  Alcotest.(check bool) "a subset union" true (Lbr_graph.Bitset.subset a c);
  Alcotest.(check bool) "union not subset a" false (Lbr_graph.Bitset.subset c a);
  Alcotest.(check bool) "equal self" true (Lbr_graph.Bitset.equal a a)

let test_digraph_reachable () =
  let g = Lbr_graph.Digraph.make ~n:5 ~edges:[ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2 ]
    (Lbr_graph.Bitset.to_list (Lbr_graph.Digraph.reachable g 0));
  Alcotest.(check (list int)) "from 3" [ 3; 4 ]
    (Lbr_graph.Bitset.to_list (Lbr_graph.Digraph.reachable g 3));
  Alcotest.(check (list int)) "from set" [ 0; 1; 2; 3; 4 ]
    (Lbr_graph.Bitset.to_list (Lbr_graph.Digraph.reachable_from_set g [ 0; 3 ]))

let test_digraph_dedup () =
  let g = Lbr_graph.Digraph.make ~n:3 ~edges:[ (0, 1); (0, 1); (1, 1) ] in
  Alcotest.(check int) "self loops and dups dropped" 1 (Lbr_graph.Digraph.num_edges g)

let test_scc_cycle () =
  let g = Lbr_graph.Digraph.make ~n:6 ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (4, 5) ] in
  let r = Lbr_graph.Scc.compute g in
  Alcotest.(check int) "4 components" 4 r.num_comps;
  Alcotest.(check bool) "0,1,2 together" true
    (r.comp_of.(0) = r.comp_of.(1) && r.comp_of.(1) = r.comp_of.(2));
  Alcotest.(check bool) "3 separate" true (r.comp_of.(3) <> r.comp_of.(0));
  (* reverse-topological ids: successors have smaller ids *)
  Alcotest.(check bool) "topo order" true (r.comp_of.(3) < r.comp_of.(0))

let test_all_closures_match_reachability () =
  let g =
    Lbr_graph.Digraph.make ~n:7
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (5, 4); (6, 5); (6, 0) ]
  in
  let closures = Lbr_graph.Scc.all_closures g in
  for v = 0 to 6 do
    Alcotest.(check (list int))
      (Printf.sprintf "closure of %d" v)
      (Lbr_graph.Bitset.to_list (Lbr_graph.Digraph.reachable g v))
      (Lbr_graph.Bitset.to_list closures.(v))
  done

let prop_closures_equal_reachability =
  QCheck.Test.make ~count:200 ~name:"all_closures = per-node reachability"
    QCheck.(make Gen.(list_size (int_bound 20) (pair (int_bound 9) (int_bound 9))))
    (fun edges ->
      let g = Lbr_graph.Digraph.make ~n:10 ~edges in
      let closures = Lbr_graph.Scc.all_closures g in
      List.for_all
        (fun v ->
          Lbr_graph.Bitset.equal closures.(v) (Lbr_graph.Digraph.reachable g v))
        (List.init 10 Fun.id))

let () =
  Alcotest.run "lbr_graph"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "union/subset" `Quick test_bitset_union_subset;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "reachable" `Quick test_digraph_reachable;
          Alcotest.test_case "dedup" `Quick test_digraph_dedup;
        ] );
      ( "scc",
        [
          Alcotest.test_case "cycle" `Quick test_scc_cycle;
          Alcotest.test_case "closure table" `Quick test_all_closures_match_reachability;
        ] );
      ( "scc-prop",
        [ QCheck_alcotest.to_alcotest ~long:false prop_closures_equal_reachability ] );
    ]
