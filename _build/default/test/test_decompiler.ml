(* Tests for the simulated decompilers: determinism, monotonicity of the
   error sets along reduction chains, the requires-items contract, and the
   pseudo-source backend. *)

open Lbr_logic
open Lbr_sat
open Lbr_jvm

let gen_pool seed =
  Lbr_workload.Generator.generate ~seed
    { Lbr_workload.Generator.default_profile with classes = 30 }

let test_determinism () =
  let pool = gen_pool 5 in
  List.iter
    (fun tool ->
      let e1 = Lbr_decompiler.Tool.errors tool pool in
      let e2 = Lbr_decompiler.Tool.errors tool pool in
      Alcotest.(check (list string))
        (Lbr_decompiler.Tool.(tool.name) ^ " deterministic")
        e1 e2)
    Lbr_decompiler.Tool.all

let test_errors_sorted_unique () =
  let pool = gen_pool 11 in
  List.iter
    (fun tool ->
      let errors = Lbr_decompiler.Tool.errors tool pool in
      Alcotest.(check (list string)) "sorted + deduplicated"
        (List.sort_uniq String.compare errors)
        errors)
    Lbr_decompiler.Tool.all

(* The requires contract: removing all items listed in an instance's
   [requires] makes that instance's message disappear. *)
let test_requires_items_sufficient_to_kill () =
  let pool = gen_pool 7 in
  let vpool = Var.Pool.create () in
  let jv = Jvars.derive vpool pool in
  let checked = ref 0 in
  List.iter
    (fun tool ->
      List.iter
        (fun (inst : Lbr_decompiler.Pattern.instance) ->
          let removable = List.filter_map (Jvars.var_opt jv) inst.requires in
          if removable <> [] then begin
            incr checked;
            let phi =
              List.fold_left (fun acc v -> Assignment.remove v acc) (Jvars.all jv) removable
            in
            let reduced = Reducer.apply jv pool phi in
            let still =
              List.exists
                (fun (i : Lbr_decompiler.Pattern.instance) -> i.message = inst.message)
                (Lbr_decompiler.Tool.instances tool reduced)
            in
            if still then Alcotest.failf "removing requires should kill %s" inst.message
          end)
        (Lbr_decompiler.Tool.instances tool pool))
    Lbr_decompiler.Tool.all;
  Alcotest.(check bool) "exercised at least one instance" true (!checked > 0)

(* Monotonicity along a random reduction chain: shrinking the kept set can
   only lose baseline messages monotonically — once a message is gone from
   some sub-input, the predicate "all baseline messages present" stays false
   for all smaller sub-inputs of that chain. *)
let prop_monotone_on_chains =
  QCheck.Test.make ~count:40 ~name:"baseline-preservation is monotone on valid chains"
    QCheck.(make Gen.(pair (int_range 1 500) (int_range 1 500)))
    (fun (pool_seed, chain_seed) ->
      let pool = gen_pool pool_seed in
      let vpool = Var.Pool.create () in
      let jv = Jvars.derive vpool pool in
      let cnf = Constraints.generate jv pool in
      let order = Lbr_sat.Order.by_creation vpool in
      let universe = Jvars.all jv in
      let rng = Random.State.make [| chain_seed |] in
      List.for_all
        (fun tool ->
          match Lbr_decompiler.Tool.errors tool pool with
          | [] -> true
          | baseline ->
              let holds phi =
                let errors = Lbr_decompiler.Tool.errors tool (Reducer.apply jv pool phi) in
                List.for_all (fun m -> List.mem m errors) baseline
              in
              (* build a decreasing chain of valid sub-inputs via MSA with
                 shrinking required sets *)
              let base_req =
                Assignment.filter (fun _ -> Random.State.float rng 1.0 < 0.3) universe
              in
              let smaller_req =
                Assignment.filter (fun _ -> Random.State.float rng 1.0 < 0.5) base_req
              in
              let closure req =
                Msa.compute cnf ~order ~universe ~required:req ()
                |> Option.value ~default:universe
              in
              let big = closure base_req and small = closure smaller_req in
              (* small ⊆ big by monotonicity of the MSA fixpoint *)
              (not (Assignment.subset small big)) || (not (holds small)) || holds big)
        Lbr_decompiler.Tool.all)

let test_source_backend () =
  let pool = gen_pool 3 in
  let text = Lbr_decompiler.Source.decompile pool in
  Alcotest.(check bool) "non-empty" true (String.length text > 500);
  let lines = Lbr_decompiler.Source.line_count pool in
  Alcotest.(check bool) "line count plausible" true (lines > 50);
  (* decompiled source shrinks when the pool shrinks *)
  let vpool = Var.Pool.create () in
  let jv = Jvars.derive vpool pool in
  let half =
    Assignment.filter (fun v -> v mod 2 = 0) (Jvars.all jv)
  in
  let reduced = Reducer.apply jv pool half in
  Alcotest.(check bool) "fewer lines after reduction" true
    (Lbr_decompiler.Source.line_count reduced < lines)

let test_tools_have_distinct_profiles () =
  let names =
    List.map (fun (t : Lbr_decompiler.Tool.t) -> t.name) Lbr_decompiler.Tool.all
  in
  Alcotest.(check int) "three tools" 3 (List.length (List.sort_uniq compare names));
  List.iter
    (fun (t : Lbr_decompiler.Tool.t) ->
      Alcotest.(check bool) (t.name ^ " has patterns") true (t.patterns <> []))
    Lbr_decompiler.Tool.all

let test_pattern_catalog () =
  let names = List.map (fun (p : Lbr_decompiler.Pattern.t) -> p.name) Lbr_decompiler.Pattern.all in
  Alcotest.(check int) "eight patterns, unique names" 8
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun name ->
      Alcotest.(check string) "find roundtrip" name (Lbr_decompiler.Pattern.find name).name)
    names

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lbr_decompiler"
    [
      ( "tools",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "sorted unique errors" `Quick test_errors_sorted_unique;
          Alcotest.test_case "distinct profiles" `Quick test_tools_have_distinct_profiles;
          Alcotest.test_case "pattern catalog" `Quick test_pattern_catalog;
        ] );
      ( "contract",
        [
          Alcotest.test_case "removing requires kills the message" `Quick
            test_requires_items_sufficient_to_kill;
        ] );
      qsuite "monotonicity" [ prop_monotone_on_chains ];
      ( "source",
        [ Alcotest.test_case "pseudo-java backend" `Quick test_source_backend ] );
    ]
