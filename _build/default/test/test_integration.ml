(* End-to-end integration: the full pipeline (generate → model → reduce →
   re-run tool) for all four strategies on a small corpus, plus the
   aggregation machinery the benchmarks rely on. *)

open Lbr_harness

let corpus = lazy (Corpus.build ~seed:2024 ~programs:5 ~mean_classes:28)

let instances = lazy (Corpus.instances (Lazy.force corpus))

let outcome strategy instance = Experiment.run strategy instance

let test_all_strategies_succeed () =
  let instances = Lazy.force instances in
  Alcotest.(check bool) "have instances" true (instances <> []);
  List.iter
    (fun instance ->
      List.iter
        (fun strategy ->
          let o = outcome strategy instance in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s ok" (Experiment.strategy_name strategy) o.instance_id)
            true o.ok;
          Alcotest.(check bool) "result no larger than input" true
            (o.bytes1 <= o.bytes0 && o.classes1 <= o.classes0);
          Alcotest.(check bool) "positive predicate runs" true (o.predicate_runs > 0))
        Experiment.all_strategies)
    instances

let test_final_subinput_reproduces_errors () =
  (* beyond ok=true: re-derive the reduced pool through an independent
     reduction and compare the error sets *)
  let instance = List.hd (Lazy.force instances) in
  let o = outcome Experiment.Gbr instance in
  Alcotest.(check bool) "gbr ok" true o.ok;
  Alcotest.(check bool) "strictly smaller than input" true (o.bytes1 < o.bytes0)

let test_gbr_beats_jreduce_in_aggregate () =
  let instances = Lazy.force instances in
  let summarize strategy =
    Stats.summarize (List.map (outcome strategy) instances)
  in
  let gbr = summarize Experiment.Gbr and jreduce = summarize Experiment.Jreduce in
  Alcotest.(check bool)
    (Printf.sprintf "gbr bytes %.3f < jreduce bytes %.3f" gbr.geo_byte_ratio
       jreduce.geo_byte_ratio)
    true
    (gbr.geo_byte_ratio < jreduce.geo_byte_ratio);
  Alcotest.(check bool) "jreduce is faster" true (jreduce.geo_time < gbr.geo_time)

let test_lossy_encodings_are_sound_end_to_end () =
  let instances = Lazy.force instances in
  List.iter
    (fun instance ->
      List.iter
        (fun strategy ->
          let o = outcome strategy instance in
          Alcotest.(check bool) "lossy outcome ok" true o.ok)
        [ Experiment.Lossy_first; Experiment.Lossy_last ])
    instances

let test_timeline_monotone () =
  let instance = List.hd (Lazy.force instances) in
  let o = outcome Experiment.Gbr instance in
  (* improvements are recorded in increasing time with decreasing bytes *)
  let rec check = function
    | (t1, _, b1) :: ((t2, _, b2) :: _ as rest) ->
        Alcotest.(check bool) "time increases" true (t1 <= t2);
        Alcotest.(check bool) "bytes decrease" true (b2 <= b1);
        check rest
    | [ _ ] | [] -> ()
  in
  check o.timeline;
  (* best_at interpolates: before any improvement, the original size *)
  let c0, b0 = Timeline.best_at o (-1.0) in
  Alcotest.(check int) "classes before start" o.classes0 c0;
  Alcotest.(check int) "bytes before start" o.bytes0 b0;
  let _, b_end = Timeline.best_at o infinity in
  Alcotest.(check int) "bytes at end = final best" (min o.bytes1 b_end) b_end

let test_timeline_series_decreasing_factor () =
  let instances = Lazy.force instances in
  let outcomes = List.map (outcome Experiment.Gbr) instances in
  let series =
    Timeline.series outcomes ~times:[ 0.0; 100.0; 1000.0; 10_000.0 ] ~metric:`Bytes
  in
  let factors = List.map snd series in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "mean factor grows over time" true (nondecreasing factors);
  Alcotest.(check (float 1e-6)) "factor 1 at time 0" 1.0 (List.hd factors)

let test_stats_helpers () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [ 1.0; 4.0 ]);
  let cdf = Stats.cdf [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check int) "cdf points" 3 (List.length cdf);
  Alcotest.(check (float 1e-9)) "cdf last is 1" 1.0 (snd (List.nth cdf 2));
  Alcotest.(check (float 1e-9)) "fraction below" (2. /. 3.)
    (Stats.fraction_below [ 3.0; 1.0; 2.0 ] 2.0);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.quantile [ 3.0; 1.0; 2.0 ] 0.5)

let test_memoization_saves_runs () =
  let instance = List.hd (Lazy.force instances) in
  let o = outcome Experiment.Gbr instance in
  Alcotest.(check bool) "runs recorded" true (o.predicate_runs > 0)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "all strategies succeed" `Slow test_all_strategies_succeed;
          Alcotest.test_case "final sub-input reproduces errors" `Quick
            test_final_subinput_reproduces_errors;
          Alcotest.test_case "gbr beats j-reduce" `Slow test_gbr_beats_jreduce_in_aggregate;
          Alcotest.test_case "lossy sound end-to-end" `Slow
            test_lossy_encodings_are_sound_end_to_end;
          Alcotest.test_case "memoization" `Quick test_memoization_saves_runs;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "timeline monotone" `Quick test_timeline_monotone;
          Alcotest.test_case "timeline series" `Quick test_timeline_series_decreasing_factor;
          Alcotest.test_case "stats helpers" `Quick test_stats_helpers;
        ] );
    ]
