test/test_decompiler.mli:
