test/test_decompiler.ml: Alcotest Assignment Constraints Gen Jvars Lbr_decompiler Lbr_jvm Lbr_logic Lbr_sat Lbr_workload List Msa Option QCheck QCheck_alcotest Random Reducer String Var
