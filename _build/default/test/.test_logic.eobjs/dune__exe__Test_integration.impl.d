test/test_integration.ml: Alcotest Corpus Experiment Lazy Lbr_harness List Printf Stats Timeline
