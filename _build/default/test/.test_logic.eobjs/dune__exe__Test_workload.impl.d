test/test_workload.ml: Alcotest Checker Classfile Classpool Gen Lbr_harness Lbr_jvm Lbr_workload List QCheck QCheck_alcotest Size
