test/test_fji.mli:
