test/test_sat.ml: Alcotest Array Assignment Clause Cnf Fun Lbr_logic Lbr_sat List Msa Order QCheck QCheck_alcotest Solver
