test/test_core.ml: Alcotest Array Assignment Clause Cnf Fun Lbr Lbr_logic Lbr_sat List Msa Order Printf QCheck QCheck_alcotest Var
