test/test_baselines.ml: Alcotest Assignment Fun Gen Hdd Lbr Lbr_baselines Lbr_logic List Printf QCheck QCheck_alcotest
