test/test_logic.ml: Alcotest Array Assignment Clause Cnf Dimacs Formula Fun Lbr_fji Lbr_logic List Model_count Printf QCheck QCheck_alcotest String Var
