test/test_graph.ml: Alcotest Array Fun Gen Lbr_graph List Printf QCheck QCheck_alcotest
