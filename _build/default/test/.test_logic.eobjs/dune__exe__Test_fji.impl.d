test/test_fji.ml: Alcotest Assignment Clause Cnf Example Gen Lbr Lbr_fji Lbr_logic Lbr_sat List Model_count Pretty Printf QCheck QCheck_alcotest Random Reduce String Syntax Typecheck Vars
