(* Tests for the baselines: ddmin and J-Reduce's binary reduction. *)

open Lbr_logic

(* ------------------------------------------------------------------ *)
(* ddmin                                                               *)

let subset_test needles items =
  if List.for_all (fun n -> List.mem n items) needles then Lbr_baselines.Ddmin.Fail
  else Lbr_baselines.Ddmin.Pass

let test_ddmin_single_needle () =
  let items = List.init 32 Fun.id in
  let result, stats = Lbr_baselines.Ddmin.run ~items ~test:(subset_test [ 17 ]) in
  Alcotest.(check (list int)) "finds the needle" [ 17 ] result;
  Alcotest.(check bool) "bounded tests" true (stats.tests < 200)

let test_ddmin_multiple_needles () =
  let items = List.init 24 Fun.id in
  let needles = [ 3; 11; 19 ] in
  let result, _ = Lbr_baselines.Ddmin.run ~items ~test:(subset_test needles) in
  Alcotest.(check (list int)) "finds all needles" needles result

let test_ddmin_preserves_order () =
  let items = [ 5; 1; 9; 2 ] in
  let result, _ = Lbr_baselines.Ddmin.run ~items ~test:(subset_test [ 9; 1 ]) in
  Alcotest.(check (list int)) "original order kept" [ 1; 9 ] result

let test_ddmin_unresolved () =
  (* only even-sized subsets are "valid"; needle is 4 *)
  let items = List.init 16 Fun.id in
  let test sub =
    if List.length sub mod 2 = 1 then Lbr_baselines.Ddmin.Unresolved
    else if List.mem 4 sub then Lbr_baselines.Ddmin.Fail
    else Lbr_baselines.Ddmin.Pass
  in
  let result, _ = Lbr_baselines.Ddmin.run ~items ~test in
  Alcotest.(check bool) "result contains needle" true (List.mem 4 result)

let prop_ddmin_one_minimal =
  QCheck.Test.make ~count:100 ~name:"ddmin returns a failing 1-minimal subset"
    QCheck.(make Gen.(list_size (int_range 1 4) (int_bound 19)))
    (fun needles_raw ->
      let needles = List.sort_uniq compare needles_raw in
      let items = List.init 20 Fun.id in
      let result, _ = Lbr_baselines.Ddmin.run ~items ~test:(subset_test needles) in
      (* failing *)
      subset_test needles result = Lbr_baselines.Ddmin.Fail
      (* 1-minimal: dropping any single element passes *)
      && List.for_all
           (fun x ->
             subset_test needles (List.filter (fun y -> y <> x) result)
             <> Lbr_baselines.Ddmin.Fail)
           result)

(* ------------------------------------------------------------------ *)
(* Binary reduction                                                    *)

let test_binary_reduction_basic () =
  let closures = List.map Assignment.of_list [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ]; [ 5 ] ] in
  let target = Assignment.of_list [ 2; 5 ] in
  let predicate = Lbr.Predicate.make (fun s -> Assignment.subset target s) in
  match Lbr_baselines.Binary_reduction.reduce ~closures ~base:Assignment.empty ~predicate with
  | Error `Predicate_inconsistent -> Alcotest.fail "inconsistent"
  | Ok (result, stats) ->
      Alcotest.(check (list int)) "keeps exactly the needed closures" [ 2; 5 ]
        (Assignment.to_list result);
      Alcotest.(check bool) "few runs" true (stats.predicate_runs < 12)

let test_binary_reduction_with_base () =
  let closures = List.map Assignment.of_list [ [ 1 ]; [ 2 ] ] in
  let base = Assignment.of_list [ 0 ] in
  let predicate = Lbr.Predicate.make (fun s -> Assignment.mem 0 s) in
  match Lbr_baselines.Binary_reduction.reduce ~closures ~base ~predicate with
  | Error `Predicate_inconsistent -> Alcotest.fail "inconsistent"
  | Ok (result, _) ->
      Alcotest.(check (list int)) "base alone suffices" [ 0 ] (Assignment.to_list result)

let prop_binary_reduction_covers =
  QCheck.Test.make ~count:200 ~name:"binary reduction returns a failing union of closures"
    QCheck.(
      make
        Gen.(
          pair
            (list_size (int_range 1 10) (list_size (int_range 1 4) (int_bound 11)))
            (list_size (int_range 1 3) (int_bound 9))))
    (fun (closure_lists, target_raw) ->
      let closures = List.map Assignment.of_list closure_lists in
      let all = Assignment.union_all closures in
      let target = Assignment.inter (Assignment.of_list target_raw) all in
      let predicate = Lbr.Predicate.make (fun s -> Assignment.subset target s) in
      match
        Lbr_baselines.Binary_reduction.reduce ~closures ~base:Assignment.empty ~predicate
      with
      | Error `Predicate_inconsistent -> false
      | Ok (result, _) -> Assignment.subset target result && Assignment.subset result all)

(* ------------------------------------------------------------------ *)
(* Graph encoding: closures from a dependency graph                    *)

let test_graph_encoding () =
  let edges = [ (0, 1); (1, 2); (3, 1); (4, 5) ] in
  let base, closures =
    Lbr_baselines.Binary_reduction.Graph_encoding.closures ~num_vars:6 ~edges ~required:[ 4 ]
  in
  Alcotest.(check (list int)) "base = closure of required" [ 4; 5 ]
    (Assignment.to_list base);
  (* distinct closures not subsumed by the base, smallest first *)
  let sizes = List.map Assignment.cardinal closures in
  Alcotest.(check bool) "sorted by size" true (List.sort compare sizes = sizes);
  List.iter
    (fun c -> Alcotest.(check bool) "not inside base" false (Assignment.subset c base))
    closures;
  (* the closure {1,2} of node 1 must be present *)
  Alcotest.(check bool) "closure of 1 present" true
    (List.exists (fun c -> Assignment.to_list c = [ 1; 2 ]) closures)

(* ------------------------------------------------------------------ *)
(* HDD                                                                 *)

open Lbr_baselines

(* A file-system-ish tree where the failure needs nodes 'a' and 'b'. *)
let hdd_tree () =
  Hdd.Node
    ( "root",
      [
        Hdd.Node ("d1", [ Hdd.Node ("a", []); Hdd.Node ("x", []) ]);
        Hdd.Node ("d2", [ Hdd.Node ("y", [ Hdd.Node ("b", []) ]) ]);
        Hdd.Node ("d3", [ Hdd.Node ("z", []) ]);
      ] )

let hdd_test needles tree =
  let kept = Hdd.labels tree in
  if List.for_all (fun n -> List.mem n kept) needles then Hdd.Fail else Hdd.Pass

let test_hdd_keeps_needles () =
  let result, stats = Hdd.run (hdd_tree ()) ~test:(hdd_test [ "a"; "b" ]) in
  let kept = Hdd.labels result in
  Alcotest.(check bool) "a kept" true (List.mem "a" kept);
  Alcotest.(check bool) "b kept" true (List.mem "b" kept);
  Alcotest.(check bool) "z removed" false (List.mem "z" kept);
  Alcotest.(check bool) "d3 removed" false (List.mem "d3" kept);
  Alcotest.(check bool) "x removed" false (List.mem "x" kept);
  Alcotest.(check bool) "several levels visited" true (stats.levels >= 2)

let test_hdd_prunes_whole_subtrees () =
  (* Failure needs nothing: HDD shrinks hard, but ddmin (by construction)
     never returns the empty level, so one spine survives. *)
  let result, _ = Hdd.run (hdd_tree ()) ~test:(hdd_test []) in
  Alcotest.(check bool) "at most a single spine remains" true (Hdd.size result <= 3);
  let kept = Hdd.labels result in
  Alcotest.(check bool) "root kept" true (List.mem "root" kept);
  Alcotest.(check bool) "most subtrees gone" true (not (List.mem "z" kept && List.mem "x" kept))

let prop_hdd_contract =
  QCheck.Test.make ~count:100 ~name:"HDD result fails and is a subtree"
    QCheck.(make Gen.(list_size (int_range 0 3) (int_bound 7)))
    (fun needle_ids ->
      (* a fixed 8-leaf two-level tree; needles among the leaves *)
      let leaves = List.init 8 (fun i -> Printf.sprintf "leaf%d" i) in
      let tree =
        Hdd.Node
          ( "root",
            List.init 4 (fun g ->
                Hdd.Node
                  ( Printf.sprintf "group%d" g,
                    [
                      Hdd.Node (List.nth leaves (2 * g), []);
                      Hdd.Node (List.nth leaves ((2 * g) + 1), []);
                    ] )) )
      in
      let needles = List.map (fun i -> Printf.sprintf "leaf%d" i) needle_ids in
      let result, _ = Hdd.run tree ~test:(hdd_test needles) in
      let kept = Hdd.labels result in
      List.for_all (fun n -> List.mem n kept) needles
      && List.for_all (fun l -> List.mem l (Hdd.labels tree)) kept)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "lbr_baselines"
    [
      ( "ddmin",
        [
          Alcotest.test_case "single needle" `Quick test_ddmin_single_needle;
          Alcotest.test_case "multiple needles" `Quick test_ddmin_multiple_needles;
          Alcotest.test_case "order preserved" `Quick test_ddmin_preserves_order;
          Alcotest.test_case "unresolved outcomes" `Quick test_ddmin_unresolved;
        ] );
      qsuite "ddmin-prop" [ prop_ddmin_one_minimal ];
      ( "binary-reduction",
        [
          Alcotest.test_case "basic" `Quick test_binary_reduction_basic;
          Alcotest.test_case "base suffices" `Quick test_binary_reduction_with_base;
          Alcotest.test_case "graph encoding" `Quick test_graph_encoding;
        ] );
      qsuite "binary-reduction-prop" [ prop_binary_reduction_covers ];
      ( "hdd",
        [
          Alcotest.test_case "keeps needles, prunes the rest" `Quick test_hdd_keeps_needles;
          Alcotest.test_case "prunes whole subtrees" `Quick test_hdd_prunes_whole_subtrees;
        ] );
      qsuite "hdd-prop" [ prop_hdd_contract ];
    ]
