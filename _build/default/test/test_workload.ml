(* Tests for the corpus generator: validity by construction, determinism,
   structural shape, and corpus-level statistics. *)

open Lbr_jvm

let prop_generated_pools_valid =
  QCheck.Test.make ~count:60 ~name:"generated pools pass the checker"
    QCheck.(make Gen.(pair (int_range 1 100_000) (int_range 12 60)))
    (fun (seed, classes) ->
      let pool =
        Lbr_workload.Generator.generate ~seed
          { Lbr_workload.Generator.default_profile with classes }
      in
      Checker.is_valid pool)

let test_determinism () =
  let profile = Lbr_workload.Generator.default_profile in
  let a = Lbr_workload.Generator.generate ~seed:123 profile in
  let b = Lbr_workload.Generator.generate ~seed:123 profile in
  Alcotest.(check int) "same size" (Size.bytes a) (Size.bytes b);
  Alcotest.(check (list string)) "same names" (Classpool.names a) (Classpool.names b);
  let c = Lbr_workload.Generator.generate ~seed:124 profile in
  Alcotest.(check bool) "different seed differs" true (Size.bytes a <> Size.bytes c)

let test_shape () =
  let pool =
    Lbr_workload.Generator.generate ~seed:77 (Lbr_workload.Generator.njr_profile ~classes:80)
  in
  let classes = Classpool.classes pool in
  let interfaces = List.filter (fun (c : Classfile.cls) -> c.is_interface) classes in
  let abstracts =
    List.filter (fun (c : Classfile.cls) -> c.is_abstract && not c.is_interface) classes
  in
  Alcotest.(check bool) "has interfaces" true (interfaces <> []);
  Alcotest.(check bool) "has abstract classes" true (abstracts <> []);
  Alcotest.(check bool) "has inheritance" true
    (List.exists (fun (c : Classfile.cls) -> not (Classfile.is_external c.super)) classes);
  Alcotest.(check bool) "has multi-interface classes" true
    (List.exists (fun (c : Classfile.cls) -> List.length c.interfaces >= 2) classes);
  Alcotest.(check bool) "has overloaded constructors" true
    (List.exists (fun (c : Classfile.cls) -> List.length c.ctors >= 2) classes);
  (* every feature the constraint generator handles specially appears *)
  let all_insns =
    List.concat_map
      (fun (c : Classfile.cls) ->
        List.concat_map (fun (m : Classfile.meth) -> m.m_body) c.methods
        @ List.concat_map (fun (k : Classfile.ctor) -> k.k_body) c.ctors)
      classes
  in
  let has pred name =
    Alcotest.(check bool) ("has " ^ name) true (List.exists pred all_insns)
  in
  has (function Classfile.Invoke_virtual _ -> true | _ -> false) "virtual calls";
  has (function Classfile.Invoke_interface _ -> true | _ -> false) "interface calls";
  has (function Classfile.Invoke_static _ -> true | _ -> false) "static calls";
  has (function Classfile.New_instance _ -> true | _ -> false) "allocations";
  has (function Classfile.Check_cast _ -> true | _ -> false) "casts";
  has (function Classfile.Upcast _ -> true | _ -> false) "upcasts";
  has (function Classfile.Load_const_class _ -> true | _ -> false) "reflection"

let test_corpus_statistics () =
  let benchmarks = Lbr_harness.Corpus.build ~seed:9 ~programs:6 ~mean_classes:40 in
  Alcotest.(check int) "six programs" 6 (List.length benchmarks);
  List.iter
    (fun (b : Lbr_harness.Corpus.benchmark) ->
      Alcotest.(check bool) "valid" true (Checker.is_valid b.pool))
    benchmarks;
  let instances = Lbr_harness.Corpus.instances benchmarks in
  Alcotest.(check bool) "some instances" true (instances <> []);
  List.iter
    (fun (i : Lbr_harness.Corpus.instance) ->
      Alcotest.(check bool) "non-empty baselines" true (i.baseline_errors <> []))
    instances;
  let stats = Lbr_harness.Corpus.stats benchmarks instances in
  Alcotest.(check bool) "geo classes in range" true
    (stats.geo_classes > 10.0 && stats.geo_classes < 160.0);
  Alcotest.(check bool) "graph fraction in range" true
    (stats.mean_graph_fraction > 0.5 && stats.mean_graph_fraction <= 1.0)

let test_class_count_respected () =
  List.iter
    (fun classes ->
      let pool =
        Lbr_workload.Generator.generate ~seed:5
          { Lbr_workload.Generator.default_profile with classes }
      in
      Alcotest.(check int) "pool size = requested classes" classes (Size.classes pool))
    [ 12; 24; 48 ]

let () =
  Alcotest.run "lbr_workload"
    [
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "shape" `Quick test_shape;
          Alcotest.test_case "class count" `Quick test_class_count_respected;
        ] );
      ( "generator-prop",
        [ QCheck_alcotest.to_alcotest ~long:false prop_generated_pools_valid ] );
      ("corpus", [ Alcotest.test_case "statistics" `Quick test_corpus_statistics ]);
    ]
