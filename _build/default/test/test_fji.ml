(* Tests for the FJI calculus: the running example of §2 (Figure 1/2),
   constraint generation, the reducer, and Theorem 3.1 (type-safety of
   reduction) as a property test. *)

open Lbr_logic
open Lbr_fji

let model = Example.model ()

let universe = Vars.all model.vars

let over = Assignment.to_list universe

let test_variable_count () =
  Alcotest.(check int) "20 variables (Figure 2)" 20 (Assignment.cardinal universe)

let test_program_type_checks () =
  match Typecheck.check model.program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "figure 1a does not type check: %a" Typecheck.pp_error e

let test_model_count_6766 () =
  (* §2: 6,766 valid sub-inputs before adding the tool requirement. *)
  let without_required =
    Cnf.make
      (List.filter (fun c -> Clause.kind c <> Clause.Unit_pos) (Cnf.clauses model.constraints))
  in
  Alcotest.(check int) "6766 valid sub-inputs" 6766 (Model_count.count without_required ~over)

let test_model_equivalent_to_figure2 () =
  let fig2 = Example.figure2_cnf model.vars in
  (* same model count and agreement on a sweep of assignments *)
  Alcotest.(check int) "same count" (Model_count.count fig2 ~over)
    (Model_count.count model.constraints ~over);
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 2000 do
    let m =
      List.filter (fun _ -> Random.State.bool rng) over |> Assignment.of_list
    in
    if Cnf.holds fig2 m <> Cnf.holds model.constraints m then
      Alcotest.fail "generated model disagrees with figure 2"
  done

let test_optimal_is_model () =
  let opt = Example.optimal model.vars in
  Alcotest.(check int) "11 variables" 11 (Assignment.cardinal opt);
  Alcotest.(check bool) "optimal satisfies constraints" true
    (Cnf.holds model.constraints opt);
  Alcotest.(check bool) "optimal triggers the bug" true (Example.buggy model.vars opt)

let run_gbr () =
  let predicate = Lbr.Predicate.make (Example.buggy model.vars) in
  let problem =
    Lbr.Problem.make ~pool:model.pool ~universe ~constraints:model.constraints ~predicate
  in
  Lbr.Gbr.reduce problem ~order:(Lbr_sat.Order.by_creation model.pool)

let test_gbr_finds_optimum () =
  match run_gbr () with
  | Error _ -> Alcotest.fail "GBR failed"
  | Ok (result, stats) ->
      Alcotest.(check (list int)) "GBR finds the optimal 11-variable solution"
        (Assignment.to_list (Example.optimal model.vars))
        (Assignment.to_list result);
      (* The paper's run uses 11 checks with its variable order; ours uses 9
         with declaration order.  Either way it must stay well below the
         6,766 brute-force runs. *)
      Alcotest.(check bool)
        (Printf.sprintf "few predicate runs (%d)" stats.predicate_runs)
        true
        (stats.predicate_runs <= 12)

let test_reduce_produces_figure1b () =
  match run_gbr () with
  | Error _ -> Alcotest.fail "GBR failed"
  | Ok (result, _) ->
      let reduced = Reduce.reduce model.vars model.program result in
      (match Typecheck.check reduced with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reduced program fails: %a" Typecheck.pp_error e);
      (* Figure 1b: A implements I with only m(); I with only m(); M whole;
         B gone. *)
      Alcotest.(check (list string)) "declarations" [ "A"; "I"; "M" ]
        (List.map Syntax.decl_name reduced.decls);
      (match Syntax.find_class reduced "A" with
      | Some a ->
          Alcotest.(check string) "A still implements I" "I" a.c_iface;
          Alcotest.(check (list string)) "A keeps only m" [ "m" ]
            (List.map (fun (m : Syntax.meth) -> m.m_name) a.c_methods)
      | None -> Alcotest.fail "A missing");
      match Syntax.find_iface reduced "I" with
      | Some i ->
          Alcotest.(check (list string)) "I keeps only m" [ "m" ]
            (List.map (fun (s : Syntax.signature) -> s.s_name) i.i_sigs)
      | None -> Alcotest.fail "I missing"

let test_reducer_stub_body () =
  (* keep A and A.m() but not its code: body becomes return this.m(); *)
  let phi =
    Assignment.of_list [ Vars.cls model.vars "A"; Vars.meth model.vars ~c:"A" ~m:"m" ]
  in
  let reduced = Reduce.reduce model.vars model.program phi in
  match Syntax.find_class reduced "A" with
  | None -> Alcotest.fail "A missing"
  | Some a -> (
      match Syntax.find_method a "m" with
      | None -> Alcotest.fail "m missing"
      | Some m ->
          Alcotest.(check bool) "stub body" true (m.m_body = Syntax.stub_body m);
          (* and the stubbed program still type checks *)
          match Typecheck.check reduced with
          | Ok () -> ()
          | Error e -> Alcotest.failf "stubbed program fails: %a" Typecheck.pp_error e)

(* Theorem 3.1 as a property: any satisfying assignment yields a program
   that type checks.  Solutions are sampled as MSA closures of random
   required sets. *)
let prop_theorem_3_1 =
  QCheck.Test.make ~count:500 ~name:"Theorem 3.1: reduce(P, φ) type checks for φ ⊨ σ"
    QCheck.(make Gen.(list_size (int_bound 6) (int_bound 19)))
    (fun seed ->
      let order = Lbr_sat.Order.by_creation model.pool in
      match
        Lbr_sat.Msa.compute model.constraints ~order ~universe
          ~required:(Assignment.of_list seed) ()
      with
      | None -> true
      | Some phi ->
          Cnf.holds model.constraints phi
          &&
          let reduced = Reduce.reduce model.vars model.program phi in
          (match Typecheck.check reduced with Ok () -> true | Error _ -> false))

(* Conversely, reducing with a non-model should usually break the program —
   sanity that the constraints are not vacuous.  We check one concrete
   counterexample rather than a property (some non-models still type check,
   e.g. when only the tool requirement is violated). *)
let test_non_model_breaks () =
  (* keep A.m() without A: not a model, and the reduction drops A entirely,
     so also keep A<I's interface I and M calling A — use M.main!code
     without [A]. *)
  let phi =
    Assignment.of_list
      [
        Vars.code model.vars ~c:"M" ~m:"main";
        Vars.meth model.vars ~c:"M" ~m:"main";
        Vars.cls model.vars "M";
        Vars.meth model.vars ~c:"M" ~m:"x";
        Vars.code model.vars ~c:"M" ~m:"x";
        Vars.cls model.vars "I";
        Vars.sig_ model.vars ~i:"I" ~m:"m";
      ]
  in
  Alcotest.(check bool) "not a model" false (Cnf.holds model.constraints phi);
  let reduced = Reduce.reduce model.vars model.program phi in
  match Typecheck.check reduced with
  | Ok () -> Alcotest.fail "expected a type error (M.main references removed A)"
  | Error _ -> ()

(* --- negative tests: the type checker rejects ill-formed programs ---- *)

open Syntax

let expect_error label program =
  match Typecheck.check program with
  | Ok () -> Alcotest.failf "%s: expected a type error" label
  | Error _ -> ()

let base_class ?(iface = empty_interface_name) ?(super = object_name) ?(methods = []) name =
  { c_name = name; c_super = super; c_iface = iface; c_fields = []; c_methods = methods }

let test_reject_unknown_type () =
  expect_error "unknown super"
    { decls = [ Class (base_class ~super:"Ghost" "A") ]; main = None };
  expect_error "unknown interface"
    { decls = [ Class (base_class ~iface:"GhostI" "A") ]; main = None }

let test_reject_cyclic_hierarchy () =
  expect_error "A extends B extends A"
    {
      decls = [ Class (base_class ~super:"B" "A"); Class (base_class ~super:"A" "B") ];
      main = None;
    }

let test_reject_bad_override () =
  let m ret = { m_ret = ret; m_name = "m"; m_params = []; m_body = New (string_name, []) } in
  expect_error "override changes return type"
    {
      decls =
        [
          Class (base_class ~methods:[ m string_name ] "A");
          Class
            (base_class ~super:"A"
               ~methods:[ { (m "B") with m_body = New ("B", []) } ]
               "B");
        ];
      main = None;
    }

let test_reject_missing_signature_impl () =
  expect_error "class does not implement its interface"
    {
      decls =
        [
          Interface { i_name = "I"; i_sigs = [ { s_ret = string_name; s_name = "m"; s_params = [] } ] };
          Class (base_class ~iface:"I" "A");
        ];
      main = None;
    }

let test_reject_unbound_variable () =
  let m = { m_ret = string_name; m_name = "m"; m_params = []; m_body = Var "ghost" } in
  expect_error "unbound variable" { decls = [ Class (base_class ~methods:[ m ] "A") ]; main = None }

let test_reject_unrelated_cast () =
  let m = { m_ret = string_name; m_name = "m"; m_params = [];
            m_body = Cast (string_name, New ("A", [])) } in
  expect_error "cast between unrelated types"
    { decls = [ Class (base_class ~methods:[ m ] "A") ]; main = None }

let test_reject_wrong_arity () =
  let m = { m_ret = string_name; m_name = "m"; m_params = [ (string_name, "x") ];
            m_body = Var "x" } in
  let caller =
    { m_ret = string_name; m_name = "go"; m_params = [];
      m_body = Call (New ("A", []), "m", []) }
  in
  expect_error "wrong number of arguments"
    {
      decls = [ Class (base_class ~methods:[ m ] "A"); Class (base_class ~methods:[ caller ] "B") ];
      main = None;
    }

let test_reject_unknown_method () =
  let caller =
    { m_ret = string_name; m_name = "go"; m_params = [];
      m_body = Call (New ("A", []), "nope", []) }
  in
  expect_error "unknown method"
    {
      decls = [ Class (base_class "A"); Class (base_class ~methods:[ caller ] "B") ];
      main = None;
    }

let test_reject_duplicate_names () =
  expect_error "duplicate declarations"
    { decls = [ Class (base_class "A"); Class (base_class "A") ]; main = None };
  expect_error "shadowing a builtin"
    { decls = [ Class (base_class "String") ]; main = None }

let test_accepts_inherited_call () =
  (* calling a method defined only in the superclass must be fine *)
  let m = { m_ret = string_name; m_name = "m"; m_params = []; m_body = New (string_name, []) } in
  let caller =
    { m_ret = string_name; m_name = "go"; m_params = [];
      m_body = Call (New ("B", []), "m", []) }
  in
  let program =
    {
      decls =
        [ Class (base_class ~methods:[ m ] "A");
          Class (base_class ~super:"A" "B");
          Class (base_class ~methods:[ caller ] "C") ];
      main = None;
    }
  in
  match Typecheck.check program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "inherited call rejected: %a" Typecheck.pp_error e

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let test_pretty_roundtrip_shape () =
  let text = Pretty.program_to_string model.program in
  List.iter
    (fun fragment ->
      if not (contains text fragment) then Alcotest.failf "pretty output missing %S" fragment)
    [ "class A implements I"; "interface I"; "class M"; "String m()" ]

let () =
  Alcotest.run "lbr_fji"
    [
      ( "example",
        [
          Alcotest.test_case "20 variables" `Quick test_variable_count;
          Alcotest.test_case "figure 1a type checks" `Quick test_program_type_checks;
          Alcotest.test_case "6766 valid sub-inputs" `Quick test_model_count_6766;
          Alcotest.test_case "model ≡ figure 2" `Quick test_model_equivalent_to_figure2;
          Alcotest.test_case "optimal solution" `Quick test_optimal_is_model;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "GBR finds the optimum" `Quick test_gbr_finds_optimum;
          Alcotest.test_case "reduce = figure 1b" `Quick test_reduce_produces_figure1b;
          Alcotest.test_case "stub body" `Quick test_reducer_stub_body;
          Alcotest.test_case "non-model breaks" `Quick test_non_model_breaks;
          Alcotest.test_case "pretty printing" `Quick test_pretty_roundtrip_shape;
        ] );
      ( "theorem-3.1",
        [ QCheck_alcotest.to_alcotest ~long:false prop_theorem_3_1 ] );
      ( "rejection",
        [
          Alcotest.test_case "unknown types" `Quick test_reject_unknown_type;
          Alcotest.test_case "cyclic hierarchy" `Quick test_reject_cyclic_hierarchy;
          Alcotest.test_case "bad override" `Quick test_reject_bad_override;
          Alcotest.test_case "missing signature impl" `Quick test_reject_missing_signature_impl;
          Alcotest.test_case "unbound variable" `Quick test_reject_unbound_variable;
          Alcotest.test_case "unrelated cast" `Quick test_reject_unrelated_cast;
          Alcotest.test_case "wrong arity" `Quick test_reject_wrong_arity;
          Alcotest.test_case "unknown method" `Quick test_reject_unknown_method;
          Alcotest.test_case "duplicate names" `Quick test_reject_duplicate_names;
          Alcotest.test_case "inherited call accepted" `Quick test_accepts_inherited_call;
        ] );
    ]
